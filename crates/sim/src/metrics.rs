//! The always-on metrics plane: typed counters, gauges, and log2-bucketed
//! histograms keyed by a static registry of (layer, metric, label).
//!
//! Unlike the flight recorder ([`crate::trace`], off by default, raw
//! events), the metrics plane is **on by default** and records steady-state
//! health in bounded memory: every histogram is 65 log2 buckets plus
//! count/sum/min/max, never a raw-sample `Vec`. Series carry two small
//! integer dimensions — the device index (multi-FPGA nodes) and a
//! per-metric label (vaccel, slot, channel, link, mux node…) — stored
//! densely so the record path is an add into a flat array.
//!
//! # Determinism
//!
//! Recording never feeds back into simulation: the plane is write-only
//! from the simulated layers and only read by reports, tests, and
//! exposition. `OPTIMUS_METRICS=off` (or `0`) disables accumulation, but
//! through a *branch-free masked path*: the accumulate executes
//! unconditionally with a per-thread mask of `!0` (on) or `0` (off), so
//! the instruction stream — and therefore the simulation — is identical
//! either way. A differential property test in `crates/core/tests/prop.rs`
//! proves simulation fingerprints are byte-identical with metrics on vs
//! off.
//!
//! Storage is thread-local, like the flight recorder, so parallel device
//! stepping needs no locks: node workers drain per-device
//! [`MetricsChunk`]s which the main thread absorbs. Every merge operation
//! (counter add, bucket add, min/max) is commutative and associative, so
//! parallel stepping yields bit-identical totals to serial stepping.
//!
//! # Exposition
//!
//! [`snapshot`] returns the registry-ordered series list (embedded as the
//! `metrics` section of every `BENCH_*.json`); [`prometheus_text`] renders
//! the standard text format (`# HELP`/`# TYPE`, cumulative `_bucket{le=…}`
//! histograms) written next to the bench reports as `PROM_<name>.prom`.

use std::cell::{Cell, RefCell};

/// Index of a metric in [`REGISTRY`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Metric(pub u16);

/// What a registry entry measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone event count.
    Counter,
    /// Last-written value (stored as `f64` bits).
    Gauge,
    /// Log2-bucketed distribution with count/sum/min/max.
    Histogram,
}

/// One entry of the static metric registry.
#[derive(Debug, Clone, Copy)]
pub struct MetricDef {
    /// The metric's own index (checked against its position by a test).
    pub id: Metric,
    /// Owning layer: `hv`, `mem`, `cci`, `fabric`, or `node`.
    pub layer: &'static str,
    /// Metric name within the layer.
    pub name: &'static str,
    /// Name of the per-metric label dimension; `""` = device-only.
    pub label: &'static str,
    pub kind: MetricKind,
    pub help: &'static str,
}

// ---- The registry ---------------------------------------------------------
//
// Names that overlap with flight-recorder counters (mmio_traps,
// hypercalls, installs, forced_resets, page_walk_cycles) are the single
// source of truth: the instrumented sites pass `def(id).name` to
// `trace::count`, so the two planes can never drift apart.

pub const HV_MMIO_TRAPS: Metric = Metric(0);
pub const HV_MMIO_TRAP_CYCLES: Metric = Metric(1);
pub const HV_HYPERCALLS: Metric = Metric(2);
pub const HV_CONTEXT_SWITCHES: Metric = Metric(3);
pub const HV_SLICE_OVERRUN_CYCLES: Metric = Metric(4);
pub const HV_PREEMPTIONS: Metric = Metric(5);
pub const HV_PREEMPT_CYCLES: Metric = Metric(6);
pub const HV_FORCED_RESETS: Metric = Metric(7);
pub const HV_INSTALLS: Metric = Metric(8);
pub const HV_INSTALL_CYCLES: Metric = Metric(9);
pub const HV_ISOLATION_ALERTS: Metric = Metric(10);
pub const MEM_IOTLB_HITS: Metric = Metric(11);
pub const MEM_IOTLB_SPEC_HITS: Metric = Metric(12);
pub const MEM_IOTLB_MISSES: Metric = Metric(13);
pub const MEM_IOTLB_CONFLICT_EVICTIONS: Metric = Metric(14);
pub const MEM_IO_PAGE_FAULTS: Metric = Metric(15);
pub const MEM_PAGE_WALK_CYCLES: Metric = Metric(16);
pub const CCI_CHANNEL_PACKETS: Metric = Metric(17);
pub const CCI_CHANNEL_SWITCHES: Metric = Metric(18);
pub const CCI_DMA_BYTES: Metric = Metric(19);
pub const CCI_DMA_RT_CYCLES: Metric = Metric(20);
pub const FABRIC_MUX_GRANTS: Metric = Metric(21);
pub const FABRIC_MUX_STALLS: Metric = Metric(22);
pub const FABRIC_MUX_QUEUE_DEPTH: Metric = Metric(23);
pub const FABRIC_PORT_FORWARDED: Metric = Metric(24);
pub const FABRIC_AUDITOR_REJECTS: Metric = Metric(25);
pub const FABRIC_FAIRNESS_JAIN: Metric = Metric(26);
pub const NODE_CHUNKS: Metric = Metric(27);
pub const NODE_CHUNK_CYCLES: Metric = Metric(28);
pub const NODE_MIGRATIONS: Metric = Metric(29);
pub const SLO_QUEUE_CYCLES: Metric = Metric(30);
pub const SLO_INSTALL_CYCLES: Metric = Metric(31);
pub const SLO_COMPUTE_CYCLES: Metric = Metric(32);
pub const SLO_PREEMPT_CYCLES: Metric = Metric(33);
pub const SLO_SHARE_STALL_CYCLES: Metric = Metric(34);
pub const SLO_E2E_CYCLES: Metric = Metric(35);
pub const SLO_JOBS_COMPLETED: Metric = Metric(36);
pub const SLO_PAYLOAD_BYTES: Metric = Metric(37);

use MetricKind::{Counter, Gauge, Histogram};

/// The static registry: every series the workspace can record.
pub const REGISTRY: &[MetricDef] = &[
    MetricDef { id: HV_MMIO_TRAPS, layer: "hv", name: "mmio_traps", label: "vaccel", kind: Counter, help: "MMIO accesses trapped and emulated by the hypervisor" },
    MetricDef { id: HV_MMIO_TRAP_CYCLES, layer: "hv", name: "mmio_trap_cycles", label: "vaccel", kind: Histogram, help: "Per-trap emulation latency in fabric cycles" },
    MetricDef { id: HV_HYPERCALLS, layer: "hv", name: "hypercalls", label: "vaccel", kind: Counter, help: "Guest hypercalls (page registrations)" },
    MetricDef { id: HV_CONTEXT_SWITCHES, layer: "hv", name: "context_switches", label: "slot", kind: Counter, help: "Slice-boundary context switches per physical slot" },
    MetricDef { id: HV_SLICE_OVERRUN_CYCLES, layer: "hv", name: "slice_overrun_cycles", label: "slot", kind: Histogram, help: "Cycles past the nominal slice end when the boundary ran" },
    MetricDef { id: HV_PREEMPTIONS, layer: "hv", name: "preemptions", label: "slot", kind: Counter, help: "Cooperative preemptions (drain + state save)" },
    MetricDef { id: HV_PREEMPT_CYCLES, layer: "hv", name: "preempt_cycles", label: "slot", kind: Histogram, help: "Drain+save duration per preemption, vs the Fig 8 deadline" },
    MetricDef { id: HV_FORCED_RESETS, layer: "hv", name: "forced_resets", label: "slot", kind: Counter, help: "Preemptions that blew the deadline and were reset" },
    MetricDef { id: HV_INSTALLS, layer: "hv", name: "installs", label: "vaccel", kind: Counter, help: "Virtual-accelerator installs (fresh or state restore)" },
    MetricDef { id: HV_INSTALL_CYCLES, layer: "hv", name: "install_cycles", label: "vaccel", kind: Histogram, help: "Install/restore duration in fabric cycles" },
    MetricDef { id: HV_ISOLATION_ALERTS, layer: "hv", name: "isolation_alerts", label: "kind", kind: Counter, help: "Watchdog alerts (kind: 0=starvation 1=iotlb_thrash 2=preempt_overrun)" },
    MetricDef { id: MEM_IOTLB_HITS, layer: "mem", name: "iotlb_hits", label: "vaccel", kind: Counter, help: "IOTLB lookups served from the TLB" },
    MetricDef { id: MEM_IOTLB_SPEC_HITS, layer: "mem", name: "iotlb_spec_hits", label: "vaccel", kind: Counter, help: "Speculative same-region fast-path hits" },
    MetricDef { id: MEM_IOTLB_MISSES, layer: "mem", name: "iotlb_misses", label: "vaccel", kind: Counter, help: "IOTLB misses requiring a page walk" },
    MetricDef { id: MEM_IOTLB_CONFLICT_EVICTIONS, layer: "mem", name: "iotlb_conflict_evictions", label: "vaccel", kind: Counter, help: "Direct-mapped set conflicts (the Fig 6 stride pathology)" },
    MetricDef { id: MEM_IO_PAGE_FAULTS, layer: "mem", name: "io_page_faults", label: "vaccel", kind: Counter, help: "Translations that faulted (unmapped or permission)" },
    MetricDef { id: MEM_PAGE_WALK_CYCLES, layer: "mem", name: "page_walk_cycles", label: "vaccel", kind: Histogram, help: "Page-walk latency including walker queueing, in cycles" },
    MetricDef { id: CCI_CHANNEL_PACKETS, layer: "cci", name: "channel_packets", label: "channel", kind: Counter, help: "Upstream packets admitted per physical channel" },
    MetricDef { id: CCI_CHANNEL_SWITCHES, layer: "cci", name: "channel_switches", label: "channel", kind: Counter, help: "Channel-selector switches, attributed to the new channel" },
    MetricDef { id: CCI_DMA_BYTES, layer: "cci", name: "dma_bytes", label: "link", kind: Counter, help: "DMA payload bytes moved per accelerator link" },
    MetricDef { id: CCI_DMA_RT_CYCLES, layer: "cci", name: "dma_rt_cycles", label: "link", kind: Histogram, help: "DMA round-trip (admit to response-ready) in cycles" },
    MetricDef { id: FABRIC_MUX_GRANTS, layer: "fabric", name: "mux_grants", label: "node", kind: Counter, help: "Round-robin grants per multiplexer-tree node" },
    MetricDef { id: FABRIC_MUX_STALLS, layer: "fabric", name: "mux_stalls", label: "node", kind: Counter, help: "Backpressure stalls (ready input, full output) per node" },
    MetricDef { id: FABRIC_MUX_QUEUE_DEPTH, layer: "fabric", name: "mux_queue_depth", label: "node", kind: Histogram, help: "Input-queue occupancy observed at each grant" },
    MetricDef { id: FABRIC_PORT_FORWARDED, layer: "fabric", name: "port_forwarded", label: "port", kind: Counter, help: "Packets cleared through the tree root per source port" },
    MetricDef { id: FABRIC_AUDITOR_REJECTS, layer: "fabric", name: "auditor_rejects", label: "slot", kind: Counter, help: "Downstream packets rejected by an auditor" },
    MetricDef { id: FABRIC_FAIRNESS_JAIN, layer: "fabric", name: "fairness_jain", label: "", kind: Gauge, help: "Jain's fairness index over per-port root grants, last watchdog window" },
    MetricDef { id: NODE_CHUNKS, layer: "node", name: "chunks", label: "", kind: Counter, help: "Synchronization-horizon chunks stepped per device" },
    MetricDef { id: NODE_CHUNK_CYCLES, layer: "node", name: "chunk_cycles", label: "", kind: Histogram, help: "Cycles per stepped chunk per device" },
    MetricDef { id: NODE_MIGRATIONS, layer: "node", name: "migrations", label: "", kind: Counter, help: "Tenants migrated onto each device (recorded on the destination)" },
    MetricDef { id: SLO_QUEUE_CYCLES, layer: "slo", name: "queue_cycles", label: "vaccel", kind: Histogram, help: "Per-job scheduler-queue wait (journal-derived, share stall excluded)" },
    MetricDef { id: SLO_INSTALL_CYCLES, layer: "slo", name: "install_cycles", label: "vaccel", kind: Histogram, help: "Per-job install cost: register replay + VCU window programming" },
    MetricDef { id: SLO_COMPUTE_CYCLES, layer: "slo", name: "compute_cycles", label: "vaccel", kind: Histogram, help: "Per-job fabric execution time" },
    MetricDef { id: SLO_PREEMPT_CYCLES, layer: "slo", name: "preempt_cycles", label: "vaccel", kind: Histogram, help: "Per-job preemption overhead: drain/save plus restore" },
    MetricDef { id: SLO_SHARE_STALL_CYCLES, layer: "slo", name: "share_stall_cycles", label: "vaccel", kind: Histogram, help: "Per-job wait on a share-linked producer, carved out of queue time" },
    MetricDef { id: SLO_E2E_CYCLES, layer: "slo", name: "e2e_cycles", label: "vaccel", kind: Histogram, help: "Per-job end-to-end latency, submit to complete" },
    MetricDef { id: SLO_JOBS_COMPLETED, layer: "slo", name: "jobs_completed", label: "vaccel", kind: Counter, help: "Jobs run to completion (journal-derived)" },
    MetricDef { id: SLO_PAYLOAD_BYTES, layer: "slo", name: "payload_bytes", label: "vaccel", kind: Counter, help: "Completed-job payload bytes (mapped working set at submit)" },
];

/// The registry entry for `m`.
pub fn def(m: Metric) -> &'static MetricDef {
    &REGISTRY[m.0 as usize]
}

// ---- Dense storage --------------------------------------------------------

/// Series index = `device * LABEL_STRIDE + min(label, LABEL_STRIDE-1)`.
/// 64 label values per device is enough for every dimension in the
/// registry (slots ≤ 8, channels ≤ 4, mux nodes ≤ 2·slots, vaccels
/// clamped); out-of-range labels share the last bin rather than growing
/// unboundedly.
pub const LABEL_STRIDE: usize = 64;

const BUCKETS: usize = 65;

#[inline]
fn packed(device: u32, label: u32) -> usize {
    device as usize * LABEL_STRIDE + (label as usize).min(LABEL_STRIDE - 1)
}

#[inline]
fn bucket_index(value: u64) -> usize {
    // 0 → bucket 0; v ∈ [2^(b-1), 2^b) → bucket b; so bucket b's inclusive
    // upper bound is 2^b - 1 and bucket 64 catches v ≥ 2^63.
    (64 - value.leading_zeros()) as usize
}

#[derive(Debug, Clone)]
struct Hist {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Hist {
    const EMPTY: Hist = Hist {
        buckets: [0; BUCKETS],
        count: 0,
        sum: 0,
        min: u64::MAX,
        max: 0,
    };
}

#[derive(Debug, Default)]
struct Plane {
    /// Counters and gauges (gauges store `f64` bits), one dense series
    /// vector per registry entry, grown on demand.
    scalars: Vec<Vec<u64>>,
    hists: Vec<Vec<Hist>>,
}

impl Plane {
    fn new() -> Self {
        Self {
            scalars: vec![Vec::new(); REGISTRY.len()],
            hists: vec![Vec::new(); REGISTRY.len()],
        }
    }
}

fn env_enabled() -> bool {
    match std::env::var("OPTIMUS_METRICS") {
        Ok(v) => !(v == "0" || v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("false")),
        Err(_) => true,
    }
}

/// All per-thread metrics state behind a *single* `thread_local`, so the
/// record path pays exactly one TLS address computation. (Split across
/// three keys — mask, device scope, plane — each `inc` cost three TLS
/// accesses, which profiles showed as a measurable slice of the hot
/// packet path.)
struct Tls {
    /// `!0` = recording, `0` = masked off. Sampled from `OPTIMUS_METRICS`
    /// once per thread; node workers re-apply the main thread's state.
    mask: Cell<u64>,
    /// Device dimension for [`inc`]/[`observe`]; the hypervisor scopes it
    /// before stepping its device so deep layers need no plumbing.
    device: Cell<u32>,
    plane: RefCell<Plane>,
}

thread_local! {
    static TLS: Tls = Tls {
        mask: Cell::new(if env_enabled() { !0u64 } else { 0 }),
        device: Cell::new(0),
        plane: RefCell::new(Plane::new()),
    };
}

/// Whether this thread is recording metrics.
pub fn enabled() -> bool {
    TLS.with(|t| t.mask.get()) != 0
}

/// Overrides the `OPTIMUS_METRICS` gate for this thread (tests, node
/// workers propagating the main thread's state).
pub fn set_enabled(on: bool) {
    TLS.with(|t| t.mask.set(if on { !0 } else { 0 }));
}

/// Scopes subsequent [`inc`]/[`observe`] calls to device `d`.
pub fn set_device(d: u32) {
    TLS.with(|t| t.device.set(d));
}

/// The current device scope.
pub fn device_scope() -> u32 {
    TLS.with(|t| t.device.get())
}

#[inline]
fn scalar_add(t: &Tls, m: Metric, idx: usize, delta: u64) {
    let mask = t.mask.get();
    let mut p = t.plane.borrow_mut();
    let v = &mut p.scalars[m.0 as usize];
    if v.len() <= idx {
        v.resize(idx + 1, 0);
    }
    v[idx] = v[idx].wrapping_add(delta & mask);
}

#[inline]
fn hist_add(t: &Tls, m: Metric, idx: usize, value: u64) {
    let mask = t.mask.get();
    let b = bucket_index(value);
    let mut p = t.plane.borrow_mut();
    let h = &mut p.hists[m.0 as usize];
    if h.len() <= idx {
        h.resize(idx + 1, Hist::EMPTY);
    }
    let h = &mut h[idx];
    h.buckets[b] = h.buckets[b].wrapping_add(1 & mask);
    h.count = h.count.wrapping_add(1 & mask);
    h.sum = h.sum.wrapping_add(value & mask);
    // min: disabled ⇒ compare against MAX (no-op); max: against 0.
    h.min = h.min.min(value | !mask);
    h.max = h.max.max(value & mask);
}

/// Adds `delta` to counter `m` for the scoped device. Branch-free on the
/// enable gate: the add always executes, masked to zero when disabled.
#[inline]
pub fn inc(m: Metric, label: u32, delta: u64) {
    TLS.with(|t| scalar_add(t, m, packed(t.device.get(), label), delta));
}

/// [`inc`] with an explicit device (node-layer aggregation).
#[inline]
pub fn inc_at(m: Metric, device: u32, label: u32, delta: u64) {
    TLS.with(|t| scalar_add(t, m, packed(device, label), delta));
}

/// Records `value` into histogram `m` for the scoped device (branch-free
/// masked path, like [`inc`]).
#[inline]
pub fn observe(m: Metric, label: u32, value: u64) {
    TLS.with(|t| hist_add(t, m, packed(t.device.get(), label), value));
}

/// [`observe`] with an explicit device.
#[inline]
pub fn observe_at(m: Metric, device: u32, label: u32, value: u64) {
    TLS.with(|t| hist_add(t, m, packed(device, label), value));
}

/// Sets gauge `m` for the scoped device (masked: a disabled thread leaves
/// the stored value untouched).
pub fn set_gauge(m: Metric, label: u32, value: f64) {
    TLS.with(|t| {
        let mask = t.mask.get();
        let idx = packed(t.device.get(), label);
        let bits = value.to_bits();
        let mut p = t.plane.borrow_mut();
        let v = &mut p.scalars[m.0 as usize];
        if v.len() <= idx {
            v.resize(idx + 1, 0);
        }
        v[idx] = (bits & mask) | (v[idx] & !mask);
    });
}

// ---- Reads ---------------------------------------------------------------

/// O(1) read of counter `m` at (device, label); 0 if never recorded.
pub fn counter_value(m: Metric, device: u32, label: u32) -> u64 {
    let idx = packed(device, label);
    TLS.with(|t| {
        t.plane.borrow().scalars[m.0 as usize]
            .get(idx)
            .copied()
            .unwrap_or(0)
    })
}

/// Sum of counter `m` over every device and label.
pub fn counter_total(m: Metric) -> u64 {
    TLS.with(|t| {
        t.plane.borrow().scalars[m.0 as usize]
            .iter()
            .fold(0u64, |a, v| a.wrapping_add(*v))
    })
}

/// Last-written gauge value; 0.0 if never set.
pub fn gauge_value(m: Metric, device: u32, label: u32) -> f64 {
    f64::from_bits(counter_value(m, device, label))
}

/// Sample count of histogram `m` at (device, label).
pub fn hist_count(m: Metric, device: u32, label: u32) -> u64 {
    let idx = packed(device, label);
    TLS.with(|t| {
        t.plane.borrow().hists[m.0 as usize]
            .get(idx)
            .map_or(0, |h| h.count)
    })
}

/// Sum of all recorded values of histogram `m` at (device, label).
pub fn hist_sum(m: Metric, device: u32, label: u32) -> u64 {
    let idx = packed(device, label);
    TLS.with(|t| {
        t.plane.borrow().hists[m.0 as usize]
            .get(idx)
            .map_or(0, |h| h.sum)
    })
}

/// Total sample count of histogram `m` across every series.
pub fn hist_total_count(m: Metric) -> u64 {
    TLS.with(|t| {
        t.plane.borrow().hists[m.0 as usize]
            .iter()
            .fold(0u64, |a, h| a.wrapping_add(h.count))
    })
}

/// Clears every series on this thread.
pub fn reset() {
    TLS.with(|t| *t.plane.borrow_mut() = Plane::new());
}

// ---- Parallel chunk drain -------------------------------------------------

/// A worker thread's accumulated metrics, drained after stepping its
/// devices so the main thread can merge them (mirrors
/// [`crate::trace::TraceChunk`]). Every merge is commutative, so the
/// absorb order cannot affect totals.
#[derive(Debug)]
pub struct MetricsChunk {
    scalars: Vec<Vec<u64>>,
    hists: Vec<Vec<Hist>>,
}

impl MetricsChunk {
    /// Whether the chunk holds no data at all.
    pub fn is_empty(&self) -> bool {
        self.scalars.iter().all(|v| v.iter().all(|&x| x == 0))
            && self.hists.iter().all(|v| v.iter().all(|h| h.count == 0))
    }
}

/// Takes this thread's plane, leaving it empty.
pub fn take_chunk() -> MetricsChunk {
    TLS.with(|t| {
        let plane = std::mem::replace(&mut *t.plane.borrow_mut(), Plane::new());
        MetricsChunk {
            scalars: plane.scalars,
            hists: plane.hists,
        }
    })
}

/// Merges a drained chunk into this thread's plane. Counters and
/// histogram cells add; gauges overwrite when the chunk wrote a value
/// (series are device-disjoint across node workers, so this is
/// order-independent too).
pub fn absorb_chunk(chunk: MetricsChunk) {
    TLS.with(|t| {
        let mut p = t.plane.borrow_mut();
        for (mi, src) in chunk.scalars.into_iter().enumerate() {
            if src.is_empty() {
                continue;
            }
            let gauge = REGISTRY[mi].kind == Gauge;
            let dst = &mut p.scalars[mi];
            if dst.len() < src.len() {
                dst.resize(src.len(), 0);
            }
            for (i, v) in src.into_iter().enumerate() {
                if gauge {
                    if v != 0 {
                        dst[i] = v;
                    }
                } else {
                    dst[i] = dst[i].wrapping_add(v);
                }
            }
        }
        for (mi, src) in chunk.hists.into_iter().enumerate() {
            if src.is_empty() {
                continue;
            }
            let dst = &mut p.hists[mi];
            if dst.len() < src.len() {
                dst.resize(src.len(), Hist::EMPTY);
            }
            for (i, h) in src.into_iter().enumerate() {
                let d = &mut dst[i];
                for (db, sb) in d.buckets.iter_mut().zip(h.buckets.iter()) {
                    *db = db.wrapping_add(*sb);
                }
                d.count = d.count.wrapping_add(h.count);
                d.sum = d.sum.wrapping_add(h.sum);
                d.min = d.min.min(h.min);
                d.max = d.max.max(h.max);
            }
        }
    });
}

// ---- Exposition -----------------------------------------------------------

/// A frozen histogram series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    pub count: u64,
    pub sum: u64,
    /// `u64::MAX` when empty.
    pub min: u64,
    pub max: u64,
    /// Cumulative counts as `(inclusive upper bound, count ≤ bound)`
    /// pairs, trimmed at the highest non-empty bucket; the implicit
    /// `+Inf` bucket equals `count`.
    pub buckets: Vec<(u64, u64)>,
}

/// A frozen series value.
#[derive(Debug, Clone, PartialEq)]
pub enum SeriesValue {
    Counter(u64),
    Gauge(f64),
    Hist(HistSnapshot),
}

/// One non-empty series: registry entry plus its two dimensions.
#[derive(Debug, Clone)]
pub struct Series {
    pub def: &'static MetricDef,
    pub device: u32,
    pub label: u32,
    pub value: SeriesValue,
}

/// Freezes every non-empty series, in registry order then
/// (device, label) order — fully deterministic for diffable reports.
pub fn snapshot() -> Vec<Series> {
    let mut out = Vec::new();
    TLS.with(|t| {
        let p = t.plane.borrow();
        for d in REGISTRY {
            let mi = d.id.0 as usize;
            match d.kind {
                Counter | Gauge => {
                    for (idx, &v) in p.scalars[mi].iter().enumerate() {
                        if v == 0 {
                            continue;
                        }
                        out.push(Series {
                            def: d,
                            device: (idx / LABEL_STRIDE) as u32,
                            label: (idx % LABEL_STRIDE) as u32,
                            value: if d.kind == Gauge {
                                SeriesValue::Gauge(f64::from_bits(v))
                            } else {
                                SeriesValue::Counter(v)
                            },
                        });
                    }
                }
                Histogram => {
                    for (idx, h) in p.hists[mi].iter().enumerate() {
                        if h.count == 0 {
                            continue;
                        }
                        let top = h
                            .buckets
                            .iter()
                            .rposition(|&c| c != 0)
                            .unwrap_or(0)
                            .min(63);
                        let mut cum = 0u64;
                        let buckets = (0..=top)
                            .map(|b| {
                                cum += h.buckets[b];
                                ((1u64 << b) - 1, cum)
                            })
                            .collect();
                        out.push(Series {
                            def: d,
                            device: (idx / LABEL_STRIDE) as u32,
                            label: (idx % LABEL_STRIDE) as u32,
                            value: SeriesValue::Hist(HistSnapshot {
                                count: h.count,
                                sum: h.sum,
                                min: h.min,
                                max: h.max,
                                buckets,
                            }),
                        });
                    }
                }
            }
        }
    });
    out
}

fn series_labels(s: &Series) -> String {
    if s.def.label.is_empty() {
        format!("{{device=\"{}\"}}", s.device)
    } else {
        format!("{{device=\"{}\",{}=\"{}\"}}", s.device, s.def.label, s.label)
    }
}

/// Renders every non-empty series in the Prometheus text exposition
/// format. Counters get the conventional `_total` suffix; histograms emit
/// cumulative `_bucket{le=…}` series plus `_sum` and `_count`.
pub fn prometheus_text() -> String {
    let mut out = String::new();
    let snap = snapshot();
    let mut last: Option<Metric> = None;
    for s in &snap {
        let suffix = match s.def.kind {
            Counter => "_total",
            _ => "",
        };
        let fq = format!("optimus_{}_{}{}", s.def.layer, s.def.name, suffix);
        if last != Some(s.def.id) {
            last = Some(s.def.id);
            let ty = match s.def.kind {
                Counter => "counter",
                Gauge => "gauge",
                Histogram => "histogram",
            };
            out.push_str(&format!("# HELP {} {}\n", fq, s.def.help));
            out.push_str(&format!("# TYPE {fq} {ty}\n"));
        }
        let labels = series_labels(s);
        match &s.value {
            SeriesValue::Counter(v) => {
                out.push_str(&format!("{fq}{labels} {v}\n"));
            }
            SeriesValue::Gauge(v) => {
                out.push_str(&format!("{fq}{labels} {v}\n"));
            }
            SeriesValue::Hist(h) => {
                let inner = labels.trim_start_matches('{').trim_end_matches('}');
                for (le, cum) in &h.buckets {
                    out.push_str(&format!("{fq}_bucket{{{inner},le=\"{le}\"}} {cum}\n"));
                }
                out.push_str(&format!("{fq}_bucket{{{inner},le=\"+Inf\"}} {}\n", h.count));
                out.push_str(&format!("{fq}_sum{labels} {}\n", h.sum));
                out.push_str(&format!("{fq}_count{labels} {}\n", h.count));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_match_positions() {
        for (i, d) in REGISTRY.iter().enumerate() {
            assert_eq!(d.id.0 as usize, i, "registry entry {} ({}/{}) misnumbered", i, d.layer, d.name);
        }
    }

    #[test]
    fn masked_accumulate_is_a_no_op_when_disabled() {
        set_enabled(false);
        inc(HV_MMIO_TRAPS, 1, 5);
        observe(HV_MMIO_TRAP_CYCLES, 1, 800);
        set_gauge(FABRIC_FAIRNESS_JAIN, 0, 0.5);
        assert_eq!(counter_value(HV_MMIO_TRAPS, 0, 1), 0);
        assert_eq!(hist_count(HV_MMIO_TRAP_CYCLES, 0, 1), 0);
        assert_eq!(gauge_value(FABRIC_FAIRNESS_JAIN, 0, 0), 0.0);
        set_enabled(true);
        inc(HV_MMIO_TRAPS, 1, 5);
        inc(HV_MMIO_TRAPS, 1, 2);
        observe(HV_MMIO_TRAP_CYCLES, 1, 800);
        set_gauge(FABRIC_FAIRNESS_JAIN, 0, 0.5);
        assert_eq!(counter_value(HV_MMIO_TRAPS, 0, 1), 7);
        assert_eq!(hist_count(HV_MMIO_TRAP_CYCLES, 0, 1), 1);
        assert_eq!(hist_sum(HV_MMIO_TRAP_CYCLES, 0, 1), 800);
        assert_eq!(gauge_value(FABRIC_FAIRNESS_JAIN, 0, 0), 0.5);
    }

    #[test]
    fn log2_bucketing_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        set_enabled(true);
        for v in [0u64, 1, 2, 3, 1024] {
            observe(MEM_PAGE_WALK_CYCLES, 4, v);
        }
        let snap = snapshot();
        let s = snap
            .iter()
            .find(|s| s.def.id == MEM_PAGE_WALK_CYCLES)
            .expect("series present");
        match &s.value {
            SeriesValue::Hist(h) => {
                assert_eq!(h.count, 5);
                assert_eq!(h.sum, 1030);
                assert_eq!(h.min, 0);
                assert_eq!(h.max, 1024);
                // Cumulative: le=0 → 1 sample, le=1 → 2, le=3 → 4,
                // le=2047 → 5 (1024 lands in bucket 11).
                assert_eq!(h.buckets.first(), Some(&(0, 1)));
                assert_eq!(h.buckets.last(), Some(&((1 << 11) - 1, 5)));
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn device_scope_and_explicit_device_agree() {
        set_enabled(true);
        set_device(3);
        inc(CCI_DMA_BYTES, 2, 64);
        set_device(0);
        inc_at(CCI_DMA_BYTES, 3, 2, 64);
        assert_eq!(counter_value(CCI_DMA_BYTES, 3, 2), 128);
        assert_eq!(counter_total(CCI_DMA_BYTES), 128);
    }

    #[test]
    fn chunk_take_and_absorb_round_trips() {
        set_enabled(true);
        inc(FABRIC_MUX_GRANTS, 1, 10);
        observe(CCI_DMA_RT_CYCLES, 1, 333);
        set_gauge(FABRIC_FAIRNESS_JAIN, 0, 0.75);
        let chunk = take_chunk();
        assert!(!chunk.is_empty());
        assert_eq!(counter_value(FABRIC_MUX_GRANTS, 0, 1), 0, "plane drained");
        inc(FABRIC_MUX_GRANTS, 1, 5);
        absorb_chunk(chunk);
        assert_eq!(counter_value(FABRIC_MUX_GRANTS, 0, 1), 15);
        assert_eq!(hist_count(CCI_DMA_RT_CYCLES, 0, 1), 1);
        assert_eq!(hist_sum(CCI_DMA_RT_CYCLES, 0, 1), 333);
        assert_eq!(gauge_value(FABRIC_FAIRNESS_JAIN, 0, 0), 0.75);
    }

    #[test]
    fn prometheus_text_has_no_duplicate_series() {
        set_enabled(true);
        inc(HV_MMIO_TRAPS, 0, 1);
        inc(HV_MMIO_TRAPS, 1, 2);
        observe(HV_MMIO_TRAP_CYCLES, 0, 800);
        let text = prometheus_text();
        assert!(text.contains("# TYPE optimus_hv_mmio_traps_total counter"));
        assert!(text.contains("optimus_hv_mmio_traps_total{device=\"0\",vaccel=\"1\"} 2"));
        assert!(text.contains("optimus_hv_mmio_trap_cycles_bucket"));
        assert!(text.contains("le=\"+Inf\""));
        let mut seen = std::collections::HashSet::new();
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let series = line.rsplit_once(' ').map(|(s, _)| s).unwrap_or(line);
            assert!(seen.insert(series.to_string()), "duplicate series {series}");
        }
    }

    #[test]
    fn out_of_range_labels_clamp_into_the_last_bin() {
        set_enabled(true);
        inc(HV_HYPERCALLS, 1_000_000, 1);
        inc(HV_HYPERCALLS, 2_000_000, 1);
        assert_eq!(
            counter_value(HV_HYPERCALLS, 0, (LABEL_STRIDE - 1) as u32),
            2
        );
    }
}
