//! The executable isolation specification: a high-level model of *who may
//! touch which host physical address*, checked against every memory access
//! the simulator actually performs.
//!
//! Modeled on refinement-based page-table verification (hvisor-pt): the
//! model's state is deliberately tiny — three relations per device —
//! and is updated **only** from the hypercall/MMIO/migration history the
//! hypervisor layer reports:
//!
//! * `iopt`: IOVA span → (HPA span, writable, owning VM), installed by the
//!   shadow-paging hypercall and torn down at detach;
//! * `frames`: HPA span → owning VM. Ownership persists after IOPT
//!   teardown (the frame allocator is a bump allocator and never reuses
//!   HPAs), so CPU accesses and migration copies stay checkable;
//! * `slots`: physical slot → VM currently allowed to drive DMA through
//!   it, bound at install and released when the preemption drain/save (or
//!   forced reset) completes.
//!
//! The low-level simulator then reports every host-memory access — CCI DMA
//! reads/writes (including the translation-fault path), MMIO delivery,
//! CPU-side guest reads/writes, `adopt_span` migration copies, and
//! live-update thaw verification — and each is checked against the model
//! **in both directions**: an access the simulator performs must be
//! permitted by the model, and an access the simulator *refuses* (a
//! translation fault) must be refused by the model too. Any divergence is
//! recorded as a [`Violation`], never panicked, so differential tests can
//! assert `violation_count() == 0` (or probe the harness itself).
//!
//! # Gating and determinism
//!
//! Like the flight recorder ([`crate::trace`]) the plane is off by default
//! and enabled with `OPTIMUS_SPEC=1`. Every hook site is guarded by
//! [`enabled`] (one thread-local read), the model is write-only from the
//! simulated layers, and nothing here ever feeds back into simulation
//! state or timing — a differential test proves fingerprints are
//! byte-identical with the spec plane on vs off.
//!
//! State is thread-local. Node workers stepping device subsets import the
//! relevant [`DeviceChunk`]s before a parallel span and export them after,
//! mirroring the trace/metrics chunk protocol; violations drain with
//! [`take_violations`] and merge in device-index order.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;

/// Retained violation cap; the total count keeps incrementing past it.
pub const MAX_RETAINED: usize = 64;

/// One refinement divergence: the simulator and the model disagreed about
/// an access (or about a model update's precondition).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Device the access belonged to.
    pub device: u32,
    /// Stable machine-readable class, e.g. `dma_cross_tenant`.
    pub kind: &'static str,
    /// Human-readable specifics (addresses, tenants, slots).
    pub detail: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct IoptSpan {
    len: u64,
    hpa: u64,
    write: bool,
    owner: u32,
}

/// The per-device model state (see module docs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeviceModel {
    iopt: BTreeMap<u64, IoptSpan>,
    frames: BTreeMap<u64, (u64, u32)>,
    slots: Vec<Option<u32>>,
}

impl DeviceModel {
    fn iopt_at(&self, iova: u64) -> Option<(u64, IoptSpan)> {
        let (&base, &span) = self.iopt.range(..=iova).next_back()?;
        (iova.wrapping_sub(base) < span.len).then_some((base, span))
    }

    fn frame_at(&self, hpa: u64) -> Option<(u64, (u64, u32))> {
        let (&base, &entry) = self.frames.range(..=hpa).next_back()?;
        (hpa.wrapping_sub(base) < entry.0).then_some((base, entry))
    }

    fn slot_owner(&self, slot: usize) -> Option<u32> {
        self.slots.get(slot).copied().flatten()
    }
}

/// A device's model state in transit between threads (node workers).
#[derive(Debug)]
pub struct DeviceChunk {
    device: u32,
    model: DeviceModel,
}

#[derive(Default)]
struct SpecState {
    devices: BTreeMap<u32, DeviceModel>,
    violations: Vec<Violation>,
    count: u64,
}

struct Tls {
    enabled: Cell<bool>,
    state: RefCell<SpecState>,
}

fn env_enabled() -> bool {
    match std::env::var("OPTIMUS_SPEC") {
        Ok(v) => v == "1" || v.eq_ignore_ascii_case("on") || v.eq_ignore_ascii_case("true"),
        Err(_) => false,
    }
}

thread_local! {
    static TLS: Tls = Tls {
        enabled: Cell::new(env_enabled()),
        state: RefCell::new(SpecState::default()),
    };
}

/// Whether this thread is checking accesses against the model. Every hook
/// site guards on this, so a disabled run pays one thread-local read per
/// hook and builds no arguments.
#[inline]
pub fn enabled() -> bool {
    TLS.with(|t| t.enabled.get())
}

/// Overrides the `OPTIMUS_SPEC` gate for this thread (tests, node workers
/// propagating the main thread's state).
pub fn set_enabled(on: bool) {
    TLS.with(|t| t.enabled.set(on));
}

/// Clears the model and all recorded violations on this thread.
pub fn reset() {
    TLS.with(|t| *t.state.borrow_mut() = SpecState::default());
}

/// Total violations recorded on this thread (including past the retention
/// cap).
pub fn violation_count() -> u64 {
    TLS.with(|t| t.state.borrow().count)
}

/// The retained violations, oldest first (capped at [`MAX_RETAINED`]).
pub fn violations() -> Vec<Violation> {
    TLS.with(|t| t.state.borrow().violations.clone())
}

fn record(s: &mut SpecState, device: u32, kind: &'static str, detail: String) {
    s.count += 1;
    if s.violations.len() < MAX_RETAINED {
        s.violations.push(Violation { device, kind, detail });
    }
}

fn with_state<R>(f: impl FnOnce(&mut SpecState) -> R) -> R {
    TLS.with(|t| f(&mut t.state.borrow_mut()))
}

// ---- Model updates (history events) ---------------------------------------

/// A shadow-paging hypercall installed `iova..iova+len` → `hpa..hpa+len`
/// for `vm`. Also claims the HPA span for `vm`; a claim overlapping a
/// *different* VM's live frames is itself a violation (the bump allocator
/// must never hand the same frame to two tenants).
pub fn map_page(device: u32, iova: u64, hpa: u64, len: u64, write: bool, vm: u32) {
    with_state(|s| {
        let m = s.devices.entry(device).or_default();
        if let Some((base, (flen, owner))) = m.frame_at(hpa) {
            if owner != vm && hpa < base + flen {
                record(
                    s,
                    device,
                    "hpa_reallocated",
                    format!("hpa {hpa:#x} claimed by vm {vm} but owned by vm {owner}"),
                );
                return;
            }
        }
        let m = s.devices.entry(device).or_default();
        m.iopt.insert(iova, IoptSpan { len, hpa, write, owner: vm });
        m.frames.entry(hpa).or_insert((len, vm));
    });
}

/// Detach tore down the IOPT span at `iova`. Frame ownership persists (the
/// node still copies the frames out during migration).
pub fn unmap_page(device: u32, iova: u64) {
    with_state(|s| {
        let m = s.devices.entry(device).or_default();
        if m.iopt.remove(&iova).is_none() {
            record(
                s,
                device,
                "unmap_unknown",
                format!("unmap of iova {iova:#x} the model never saw mapped"),
            );
        }
    });
}

/// The hypervisor installed `vm`'s virtual accelerator onto `slot`: DMAs
/// from that slot now act on `vm`'s behalf.
pub fn bind_slot(device: u32, slot: usize, vm: u32) {
    with_state(|s| {
        let m = s.devices.entry(device).or_default();
        if m.slots.len() <= slot {
            m.slots.resize(slot + 1, None);
        }
        m.slots[slot] = Some(vm);
    });
}

/// The slot's occupant finished its drain/save (or was force-reset): no
/// tenant may issue DMA through it until the next install.
pub fn unbind_slot(device: u32, slot: usize) {
    with_state(|s| {
        let m = s.devices.entry(device).or_default();
        if m.slots.len() <= slot {
            m.slots.resize(slot + 1, None);
        }
        m.slots[slot] = None;
    });
}

// ---- Access checks --------------------------------------------------------

/// A DMA from `slot` translated to `hpa` and touched host memory: the
/// model must map the IOVA to exactly that HPA, with sufficient
/// permission, and the span's owner must be the VM bound to the slot.
pub fn check_dma(device: u32, slot: u32, iova: u64, hpa: u64, write: bool) {
    with_state(|s| {
        let Some(m) = s.devices.get(&device) else {
            record(s, device, "dma_unmodeled_device", format!("iova {iova:#x} slot {slot}"));
            return;
        };
        let Some((base, span)) = m.iopt_at(iova) else {
            record(
                s,
                device,
                "dma_unmapped",
                format!("slot {slot} reached iova {iova:#x} the model has no mapping for"),
            );
            return;
        };
        let model_hpa = span.hpa + (iova - base);
        if model_hpa != hpa {
            record(
                s,
                device,
                "dma_wrong_hpa",
                format!("iova {iova:#x}: simulator used hpa {hpa:#x}, model says {model_hpa:#x}"),
            );
            return;
        }
        if write && !span.write {
            record(s, device, "dma_perm", format!("write to read-only iova {iova:#x}"));
            return;
        }
        match m.slot_owner(slot as usize) {
            Some(vm) if vm == span.owner => {}
            Some(vm) => record(
                s,
                device,
                "dma_cross_tenant",
                format!(
                    "slot {slot} (vm {vm}) touched iova {iova:#x} owned by vm {owner}",
                    owner = span.owner
                ),
            ),
            None => record(
                s,
                device,
                "dma_unbound_slot",
                format!("unbound slot {slot} issued DMA to iova {iova:#x}"),
            ),
        }
    });
}

/// The IOMMU refused a DMA (translation fault). Refinement runs both ways:
/// if the model *would* have permitted the access, the simulator dropped
/// legal traffic.
pub fn check_dma_fault(device: u32, slot: u32, iova: u64, write: bool) {
    with_state(|s| {
        let Some(m) = s.devices.get(&device) else { return };
        if let Some((_, span)) = m.iopt_at(iova) {
            if (!write || span.write) && m.slot_owner(slot as usize) == Some(span.owner) {
                record(
                    s,
                    device,
                    "dropped_legal_dma",
                    format!("slot {slot} faulted on iova {iova:#x} the model permits"),
                );
            }
        }
    });
}

/// An MMIO access was delivered to accelerator `slot`; `base`/`size` is
/// that slot's BAR page. Delivery outside the page is a containment
/// violation regardless of how the auditor's arithmetic got there.
pub fn check_mmio_deliver(device: u32, slot: usize, addr: u64, base: u64, size: u64) {
    with_state(|s| {
        if addr.wrapping_sub(base) >= size {
            record(
                s,
                device,
                "mmio_out_of_page",
                format!("addr {addr:#x} delivered to slot {slot} page [{base:#x}, +{size:#x})"),
            );
        }
    });
}

/// A CPU-side guest access (`write_mem`/`read_mem`) touched
/// `hpa..hpa+len` on behalf of `vm`: the whole span must be covered by
/// `vm`'s own frames. Frames are claimed at the hypercall's granularity
/// (2 MB or 4 KB), so the check walks contiguous frames until the span is
/// covered rather than assuming one frame suffices.
pub fn check_cpu(device: u32, hpa: u64, len: u64, vm: u32, write: bool) {
    with_state(|s| {
        let kind = if write { "cpu_write" } else { "cpu_read" };
        let Some(m) = s.devices.get(&device) else {
            record(s, device, "cpu_unowned", format!("{kind} of hpa {hpa:#x} on unmodeled device"));
            return;
        };
        let end = hpa + len;
        let mut cur = hpa;
        loop {
            match m.frame_at(cur) {
                Some((base, (flen, owner))) => {
                    if owner != vm {
                        record(
                            s,
                            device,
                            "cpu_cross_tenant",
                            format!("vm {vm} {kind} hpa {cur:#x} owned by vm {owner}"),
                        );
                        return;
                    }
                    let span_end = base + flen;
                    if span_end >= end {
                        return;
                    }
                    cur = span_end;
                }
                None => {
                    let k = if cur == hpa { "cpu_unowned" } else { "cpu_overrun" };
                    record(
                        s,
                        device,
                        k,
                        format!("vm {vm} {kind} [{hpa:#x}, +{len:#x}) uncovered at {cur:#x}"),
                    );
                    return;
                }
            }
        }
    });
}

/// One migration frame copy: the source span must belong to the detached
/// tenant (`src_vm` on `src_device`), the destination span to the freshly
/// attached one (`dst_vm` on `dst_device`).
pub fn check_adopt(
    src_device: u32,
    src_hpa: u64,
    src_vm: u32,
    dst_device: u32,
    dst_hpa: u64,
    dst_vm: u32,
) {
    with_state(|s| {
        let src_owner = s
            .devices
            .get(&src_device)
            .and_then(|m| m.frame_at(src_hpa))
            .map(|(_, (_, owner))| owner);
        if src_owner != Some(src_vm) {
            record(
                s,
                src_device,
                "adopt_src_mismatch",
                format!("migration read hpa {src_hpa:#x} owned by {src_owner:?}, not vm {src_vm}"),
            );
        }
        let dst_owner = s
            .devices
            .get(&dst_device)
            .and_then(|m| m.frame_at(dst_hpa))
            .map(|(_, (_, owner))| owner);
        if dst_owner != Some(dst_vm) {
            record(
                s,
                dst_device,
                "adopt_dst_mismatch",
                format!("migration wrote hpa {dst_hpa:#x} owned by {dst_owner:?}, not vm {dst_vm}"),
            );
        }
    });
}

/// Live-update thaw verified an IOPT entry against the persistent device:
/// the model (which also persisted across the freeze) must agree.
pub fn check_thaw(device: u32, iova: u64, hpa: u64) {
    with_state(|s| {
        let modeled = s
            .devices
            .get(&device)
            .and_then(|m| m.iopt_at(iova))
            .map(|(base, span)| span.hpa + (iova - base));
        if modeled != Some(hpa) {
            record(
                s,
                device,
                "thaw_mismatch",
                format!("thawed iopt entry {iova:#x}→{hpa:#x}; model says {modeled:?}"),
            );
        }
    });
}

// ---- Parallel chunk plumbing ---------------------------------------------

/// Removes `device`'s model from this thread so a worker can own it for a
/// parallel span. Returns `None` if the device has no model yet (the
/// worker starts it fresh via `or_default`).
pub fn export_device(device: u32) -> Option<DeviceChunk> {
    with_state(|s| s.devices.remove(&device).map(|model| DeviceChunk { device, model }))
}

/// Installs a model exported by [`export_device`] into this thread.
pub fn import_device(chunk: DeviceChunk) {
    with_state(|s| {
        s.devices.insert(chunk.device, chunk.model);
    });
}

/// Drains this thread's violations (count, retained list) for the main
/// thread to [`absorb_violations`] in device-index order.
pub fn take_violations() -> (u64, Vec<Violation>) {
    with_state(|s| {
        let count = std::mem::take(&mut s.count);
        let v = std::mem::take(&mut s.violations);
        (count, v)
    })
}

/// Merges a worker's drained violations into this thread's totals.
pub fn absorb_violations((count, v): (u64, Vec<Violation>)) {
    with_state(|s| {
        s.count += count;
        for violation in v {
            if s.violations.len() < MAX_RETAINED {
                s.violations.push(violation);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() {
        set_enabled(true);
        reset();
    }

    #[test]
    fn in_model_dma_passes_and_cross_tenant_dma_violates() {
        fresh();
        map_page(0, 0x10_0000, 0x20_0000, 0x1000, true, 7);
        bind_slot(0, 2, 7);
        check_dma(0, 2, 0x10_0040, 0x20_0040, true);
        assert_eq!(violation_count(), 0);
        // Another tenant's slot reaching the same span is a violation.
        bind_slot(0, 3, 9);
        check_dma(0, 3, 0x10_0040, 0x20_0040, false);
        assert_eq!(violation_count(), 1);
        assert_eq!(violations()[0].kind, "dma_cross_tenant");
    }

    #[test]
    fn wrong_hpa_and_unmapped_and_unbound_are_distinct_kinds() {
        fresh();
        map_page(0, 0x0, 0x1000, 0x1000, true, 1);
        bind_slot(0, 0, 1);
        check_dma(0, 0, 0x40, 0x2040, false);
        check_dma(0, 0, 0x9999_0000, 0x0, false);
        unbind_slot(0, 0);
        check_dma(0, 0, 0x40, 0x1040, false);
        let kinds: Vec<_> = violations().iter().map(|v| v.kind).collect();
        assert_eq!(kinds, ["dma_wrong_hpa", "dma_unmapped", "dma_unbound_slot"]);
    }

    #[test]
    fn fault_on_modeled_mapping_is_dropped_legal_dma() {
        fresh();
        map_page(0, 0x0, 0x1000, 0x1000, true, 1);
        bind_slot(0, 0, 1);
        // Fault on an unmapped iova agrees with the model: no violation.
        check_dma_fault(0, 0, 0xdead_0000, false);
        assert_eq!(violation_count(), 0);
        // Fault on a mapped, owned iova means the simulator dropped legal
        // traffic.
        check_dma_fault(0, 0, 0x80, false);
        assert_eq!(violations()[0].kind, "dropped_legal_dma");
    }

    #[test]
    fn unmap_keeps_frame_ownership_for_migration_copies() {
        fresh();
        map_page(0, 0x10_0000, 0x20_0000, 0x20_0000, true, 4);
        unmap_page(0, 0x10_0000);
        map_page(1, 0x30_0000, 0x50_0000, 0x20_0000, true, 0);
        check_adopt(0, 0x20_0000, 4, 1, 0x50_0000, 0);
        assert_eq!(violation_count(), 0);
        // Copying from a frame the detached tenant never owned is flagged.
        check_adopt(0, 0x9000_0000, 4, 1, 0x50_0000, 0);
        assert_eq!(violations()[0].kind, "adopt_src_mismatch");
    }

    #[test]
    fn hpa_reallocation_to_a_second_tenant_is_flagged() {
        fresh();
        map_page(0, 0x10_0000, 0x20_0000, 0x1000, true, 1);
        map_page(0, 0x90_0000, 0x20_0000, 0x1000, true, 2);
        assert_eq!(violations()[0].kind, "hpa_reallocated");
    }

    #[test]
    fn cpu_checks_walk_contiguous_frames() {
        fresh();
        // A 2 MB guest page registered as 512 contiguous 4 KB hypercalls.
        for k in 0..512u64 {
            map_page(0, 0x10_0000 + k * 0x1000, 0x20_0000 + k * 0x1000, 0x1000, true, 3);
        }
        // A CPU write spanning many frames is fine if all are owned.
        check_cpu(0, 0x20_0000, 0x20_0000, 3, true);
        assert_eq!(violation_count(), 0);
        // Running past the last owned frame is an overrun.
        check_cpu(0, 0x20_0000, 0x20_0000 + 0x1000, 3, true);
        assert_eq!(violations()[0].kind, "cpu_overrun");
        // Another tenant touching the span is cross-tenant.
        check_cpu(0, 0x20_0040, 0x40, 9, false);
        assert_eq!(violations()[1].kind, "cpu_cross_tenant");
        // A completely unowned address is distinct from an overrun.
        check_cpu(0, 0x9000_0000, 0x40, 3, false);
        assert_eq!(violations()[2].kind, "cpu_unowned");
    }

    #[test]
    fn mmio_page_containment() {
        fresh();
        check_mmio_deliver(0, 1, 0x12040, 0x12000, 0x1000);
        assert_eq!(violation_count(), 0);
        check_mmio_deliver(0, 1, 0x13000, 0x12000, 0x1000);
        assert_eq!(violations()[0].kind, "mmio_out_of_page");
        // Wrap-around below the base must not be accepted.
        check_mmio_deliver(0, 1, 0x11fff, 0x12000, 0x1000);
        assert_eq!(violation_count(), 2);
    }

    #[test]
    fn export_import_round_trips_across_threads() {
        fresh();
        map_page(3, 0x0, 0x1000, 0x1000, true, 5);
        bind_slot(3, 0, 5);
        let chunk = export_device(3).expect("model exists");
        // Simulate the worker: fresh thread state, imported model.
        let handle = std::thread::spawn(move || {
            set_enabled(true);
            import_device(chunk);
            check_dma(3, 0, 0x40, 0x1040, false);
            check_dma(3, 0, 0x40, 0xbad0, false); // one violation
            (export_device(3).expect("still there"), take_violations())
        });
        let (chunk, violations_chunk) = handle.join().unwrap();
        import_device(chunk);
        absorb_violations(violations_chunk);
        assert_eq!(violation_count(), 1);
        // The re-imported model still checks.
        check_dma(3, 0, 0x80, 0x1080, false);
        assert_eq!(violation_count(), 1);
    }

    #[test]
    fn violation_retention_caps_but_count_does_not() {
        fresh();
        for i in 0..(MAX_RETAINED as u64 + 10) {
            check_dma(0, 0, i * 64, 0, false);
        }
        assert_eq!(violations().len(), MAX_RETAINED);
        assert_eq!(violation_count(), MAX_RETAINED as u64 + 10);
    }
}
