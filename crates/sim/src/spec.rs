//! The executable isolation specification: a high-level model of *who may
//! touch which host physical address*, checked against every memory access
//! the simulator actually performs.
//!
//! Modeled on refinement-based page-table verification (hvisor-pt): the
//! model's state is deliberately tiny — three relations per device —
//! and is updated **only** from the hypercall/MMIO/migration history the
//! hypervisor layer reports:
//!
//! * `iopt`: IOVA span → (HPA span, writable, acting VM), installed by the
//!   shadow-paging hypercall (or a share retrieval) and torn down at
//!   detach/relinquish;
//! * `frames`: HPA span → an *entitlement set*: the owning VM plus any
//!   live retrievers holding a share handle over the span with per-handle
//!   permissions, plus the history of entitlements that have ended
//!   (relinquished / reclaimed / migrated). Ownership persists after IOPT
//!   teardown (the frame allocator is a bump allocator and never reuses
//!   HPAs), so CPU accesses, migration copies, and post-mortem provenance
//!   stay checkable;
//! * `slots`: physical slot → VM currently allowed to drive DMA through
//!   it, bound at install and released when the preemption drain/save (or
//!   forced reset) completes.
//!
//! The low-level simulator then reports every host-memory access — CCI DMA
//! reads/writes (including the translation-fault path), MMIO delivery,
//! guest-visible MMIO register-file writes, CPU-side guest reads/writes,
//! `adopt_span` migration copies, and live-update thaw verification — and
//! each is checked against the model **in both directions**: an access the
//! simulator performs must be permitted by the model, and an access the
//! simulator *refuses* (a translation fault) must be refused by the model
//! too. Any divergence is recorded as a [`Violation`], never panicked, so
//! differential tests can assert `violation_count() == 0` (or probe the
//! harness itself). Violations against frames that ever carried a share
//! handle embed the frame's full ownership history, so a wild DMA probing
//! a relinquished handle names the handle, the peer, and how the
//! entitlement ended.
//!
//! # Gating and determinism
//!
//! Like the flight recorder ([`crate::trace`]) the plane is off by default
//! and enabled with `OPTIMUS_SPEC=1`. Every hook site is guarded by
//! [`enabled`] (one thread-local read), the model is write-only from the
//! simulated layers, and nothing here ever feeds back into simulation
//! state or timing — a differential test proves fingerprints are
//! byte-identical with the spec plane on vs off.
//!
//! State is thread-local. Node workers stepping device subsets import the
//! relevant [`DeviceChunk`]s before a parallel span and export them after,
//! mirroring the trace/metrics chunk protocol; violations drain with
//! [`take_violations`] and merge in device-index order.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;

/// Retained violation cap; the total count keeps incrementing past it.
pub const MAX_RETAINED: usize = 64;

/// One refinement divergence: the simulator and the model disagreed about
/// an access (or about a model update's precondition).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Device the access belonged to.
    pub device: u32,
    /// Stable machine-readable class, e.g. `dma_cross_tenant`.
    pub kind: &'static str,
    /// Human-readable specifics (addresses, tenants, slots, and — for
    /// frames that ever carried a share handle — the ownership history).
    pub detail: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct IoptSpan {
    len: u64,
    hpa: u64,
    write: bool,
    owner: u32,
}

/// One live (or ended) share entitlement over a frame: `vm` may access the
/// span through share `handle`, read-only unless `write`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entitlement {
    vm: u32,
    handle: u64,
    write: bool,
}

impl Entitlement {
    fn perm(&self) -> &'static str {
        if self.write { "rw" } else { "ro" }
    }
}

/// An HPA span's entitlement set: the owner, every live retriever, and the
/// history of entitlements that have ended (and how).
#[derive(Debug, Clone, PartialEq, Eq)]
struct FrameEntry {
    len: u64,
    owner: u32,
    shared: Vec<Entitlement>,
    history: Vec<(Entitlement, &'static str)>,
}

impl FrameEntry {
    fn new(len: u64, owner: u32) -> Self {
        Self { len, owner, shared: Vec::new(), history: Vec::new() }
    }

    /// Whether `vm` may access the span (owner always; retrievers per
    /// their handle's permission).
    fn allows(&self, vm: u32, write: bool) -> bool {
        vm == self.owner
            || self.shared.iter().any(|e| e.vm == vm && (!write || e.write))
    }

    /// The frame's full ownership history, for violation details.
    fn provenance(&self) -> String {
        let mut s = format!("owner=vm {}", self.owner);
        for e in &self.shared {
            s.push_str(&format!(
                "; live handle {:#x} -> vm {} ({})",
                e.handle,
                e.vm,
                e.perm()
            ));
        }
        for (e, how) in &self.history {
            s.push_str(&format!(
                "; {how} handle {:#x} -> vm {} ({})",
                e.handle,
                e.vm,
                e.perm()
            ));
        }
        s
    }
}

/// The per-device model state (see module docs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeviceModel {
    iopt: BTreeMap<u64, IoptSpan>,
    frames: BTreeMap<u64, FrameEntry>,
    slots: Vec<Option<u32>>,
}

impl DeviceModel {
    fn iopt_at(&self, iova: u64) -> Option<(u64, IoptSpan)> {
        let (&base, &span) = self.iopt.range(..=iova).next_back()?;
        (iova.wrapping_sub(base) < span.len).then_some((base, span))
    }

    fn frame_at(&self, hpa: u64) -> Option<(u64, &FrameEntry)> {
        let (&base, entry) = self.frames.range(..=hpa).next_back()?;
        (hpa.wrapping_sub(base) < entry.len).then_some((base, entry))
    }

    fn frame_base(&self, hpa: u64) -> Option<u64> {
        self.frame_at(hpa).map(|(base, _)| base)
    }

    fn slot_owner(&self, slot: usize) -> Option<u32> {
        self.slots.get(slot).copied().flatten()
    }
}

/// A device's model state in transit between threads (node workers).
#[derive(Debug)]
pub struct DeviceChunk {
    device: u32,
    model: DeviceModel,
}

#[derive(Default)]
struct SpecState {
    devices: BTreeMap<u32, DeviceModel>,
    violations: Vec<Violation>,
    count: u64,
}

struct Tls {
    enabled: Cell<bool>,
    state: RefCell<SpecState>,
}

fn env_enabled() -> bool {
    match std::env::var("OPTIMUS_SPEC") {
        Ok(v) => v == "1" || v.eq_ignore_ascii_case("on") || v.eq_ignore_ascii_case("true"),
        Err(_) => false,
    }
}

thread_local! {
    static TLS: Tls = Tls {
        enabled: Cell::new(env_enabled()),
        state: RefCell::new(SpecState::default()),
    };
}

/// Whether this thread is checking accesses against the model. Every hook
/// site guards on this, so a disabled run pays one thread-local read per
/// hook and builds no arguments.
#[inline]
pub fn enabled() -> bool {
    TLS.with(|t| t.enabled.get())
}

/// Overrides the `OPTIMUS_SPEC` gate for this thread (tests, node workers
/// propagating the main thread's state).
pub fn set_enabled(on: bool) {
    TLS.with(|t| t.enabled.set(on));
}

/// Clears the model and all recorded violations on this thread.
pub fn reset() {
    TLS.with(|t| *t.state.borrow_mut() = SpecState::default());
}

/// Total violations recorded on this thread (including past the retention
/// cap).
pub fn violation_count() -> u64 {
    TLS.with(|t| t.state.borrow().count)
}

/// The retained violations, oldest first (capped at [`MAX_RETAINED`]).
pub fn violations() -> Vec<Violation> {
    TLS.with(|t| t.state.borrow().violations.clone())
}

fn record(s: &mut SpecState, device: u32, kind: &'static str, detail: String) {
    s.count += 1;
    if s.violations.len() < MAX_RETAINED {
        s.violations.push(Violation { device, kind, detail });
    }
}

fn with_state<R>(f: impl FnOnce(&mut SpecState) -> R) -> R {
    TLS.with(|t| f(&mut t.state.borrow_mut()))
}

// ---- Model updates (history events) ---------------------------------------

/// A shadow-paging hypercall installed `iova..iova+len` → `hpa..hpa+len`
/// for `vm`. Also claims the HPA span for `vm`; a claim overlapping a
/// *different* VM's live frames is itself a violation (the bump allocator
/// must never hand the same frame to two tenants).
pub fn map_page(device: u32, iova: u64, hpa: u64, len: u64, write: bool, vm: u32) {
    with_state(|s| {
        let conflict = s
            .devices
            .entry(device)
            .or_default()
            .frame_at(hpa)
            .filter(|(_, e)| e.owner != vm)
            .map(|(_, e)| e.owner);
        if let Some(owner) = conflict {
            record(
                s,
                device,
                "hpa_reallocated",
                format!("hpa {hpa:#x} claimed by vm {vm} but owned by vm {owner}"),
            );
            return;
        }
        let m = s.devices.entry(device).or_default();
        m.iopt.insert(iova, IoptSpan { len, hpa, write, owner: vm });
        m.frames.entry(hpa).or_insert_with(|| FrameEntry::new(len, vm));
    });
}

/// Detach tore down the IOPT span at `iova`. Frame ownership persists (the
/// node still copies the frames out during migration).
pub fn unmap_page(device: u32, iova: u64) {
    with_state(|s| {
        let m = s.devices.entry(device).or_default();
        if m.iopt.remove(&iova).is_none() {
            record(
                s,
                device,
                "unmap_unknown",
                format!("unmap of iova {iova:#x} the model never saw mapped"),
            );
        }
    });
}

/// A `mem_retrieve` installed `iova..iova+len` → `hpa..hpa+len` into
/// `retriever`'s IOPT under share `handle`.
///
/// With `owner = Some(o)` the span must already be an owned frame of `o`
/// (the same-device case: the retriever maps the owner's frames in place).
/// With `owner = None` the span is a freshly allocated cross-device mirror
/// frame, claimed for the retriever (the node keeps it in sync with the
/// owner's authoritative copy). Either way the retriever gains a live
/// entitlement carrying the handle and permission, and the IOPT span acts
/// on the retriever's behalf so its slot may DMA through it.
pub fn retrieve_page(
    device: u32,
    iova: u64,
    hpa: u64,
    len: u64,
    write: bool,
    retriever: u32,
    owner: Option<u32>,
    handle: u64,
) {
    with_state(|s| {
        let m = s.devices.entry(device).or_default();
        let base = match owner {
            Some(o) => match m.frame_at(hpa) {
                Some((base, e)) if e.owner == o => base,
                other => {
                    let found = other.map(|(_, e)| e.owner);
                    record(
                        s,
                        device,
                        "share_bad_owner",
                        format!(
                            "handle {handle:#x}: retrieve of hpa {hpa:#x} expected owner vm \
                             {o}, model has {found:?}"
                        ),
                    );
                    return;
                }
            },
            None => {
                m.frames.entry(hpa).or_insert_with(|| FrameEntry::new(len, retriever));
                hpa
            }
        };
        let m = s.devices.entry(device).or_default();
        m.iopt.insert(iova, IoptSpan { len, hpa, write, owner: retriever });
        if let Some(e) = m.frames.get_mut(&base) {
            e.shared.push(Entitlement { vm: retriever, handle, write });
        }
    });
}

/// A retrieved span was torn down: `mem_relinquish`, an owner-forced
/// `mem_reclaim`, or the retriever migrating away (`how` names which).
/// Removes the IOPT span, ends the live entitlement, and appends it to the
/// frame's history so later violations carry the full provenance.
pub fn relinquish_page(device: u32, iova: u64, hpa: u64, vm: u32, handle: u64, how: &'static str) {
    with_state(|s| {
        let m = s.devices.entry(device).or_default();
        let missing_iopt = m.iopt.remove(&iova).is_none();
        let ended = match m.frame_base(hpa) {
            Some(base) => {
                let e = m.frames.get_mut(&base).expect("frame_base hit");
                match e.shared.iter().position(|en| en.vm == vm && en.handle == handle) {
                    Some(i) => {
                        let en = e.shared.remove(i);
                        e.history.push((en, how));
                        true
                    }
                    None => false,
                }
            }
            None => false,
        };
        if missing_iopt {
            record(
                s,
                device,
                "unmap_unknown",
                format!("relinquish of iova {iova:#x} the model never saw mapped"),
            );
        }
        if !ended {
            record(
                s,
                device,
                "relinquish_unknown",
                format!(
                    "handle {handle:#x}: vm {vm} relinquished hpa {hpa:#x} without a live \
                     entitlement"
                ),
            );
        }
    });
}

/// The hypervisor installed `vm`'s virtual accelerator onto `slot`: DMAs
/// from that slot now act on `vm`'s behalf.
pub fn bind_slot(device: u32, slot: usize, vm: u32) {
    with_state(|s| {
        let m = s.devices.entry(device).or_default();
        if m.slots.len() <= slot {
            m.slots.resize(slot + 1, None);
        }
        m.slots[slot] = Some(vm);
    });
}

/// The slot's occupant finished its drain/save (or was force-reset): no
/// tenant may issue DMA through it until the next install.
pub fn unbind_slot(device: u32, slot: usize) {
    with_state(|s| {
        let m = s.devices.entry(device).or_default();
        if m.slots.len() <= slot {
            m.slots.resize(slot + 1, None);
        }
        m.slots[slot] = None;
    });
}

// ---- Access checks --------------------------------------------------------

/// A DMA from `slot` translated to `hpa` and touched host memory: the
/// model must map the IOVA to exactly that HPA, with sufficient
/// permission, and the span's acting VM must be the VM bound to the slot.
/// When the target HPA is a frame the model knows (e.g. a probe of a
/// relinquished share span), the detail embeds its ownership history.
pub fn check_dma(device: u32, slot: u32, iova: u64, hpa: u64, write: bool) {
    with_state(|s| {
        let verdict: Option<(&'static str, String)> = (|| {
            let Some(m) = s.devices.get(&device) else {
                return Some(("dma_unmodeled_device", format!("iova {iova:#x} slot {slot}")));
            };
            let Some((base, span)) = m.iopt_at(iova) else {
                let mut detail =
                    format!("slot {slot} reached iova {iova:#x} the model has no mapping for");
                if let Some((_, e)) = m.frame_at(hpa) {
                    detail.push_str(&format!("; hpa {hpa:#x} ownership: {}", e.provenance()));
                }
                return Some(("dma_unmapped", detail));
            };
            let model_hpa = span.hpa + (iova - base);
            if model_hpa != hpa {
                return Some((
                    "dma_wrong_hpa",
                    format!("iova {iova:#x}: simulator used hpa {hpa:#x}, model says {model_hpa:#x}"),
                ));
            }
            if write && !span.write {
                return Some(("dma_perm", format!("write to read-only iova {iova:#x}")));
            }
            match m.slot_owner(slot as usize) {
                Some(vm) if vm == span.owner => None,
                Some(vm) => {
                    let mut detail = format!(
                        "slot {slot} (vm {vm}) touched iova {iova:#x} owned by vm {owner}",
                        owner = span.owner
                    );
                    if let Some((_, e)) = m.frame_at(hpa) {
                        detail.push_str(&format!("; hpa {hpa:#x} ownership: {}", e.provenance()));
                    }
                    Some(("dma_cross_tenant", detail))
                }
                None => Some((
                    "dma_unbound_slot",
                    format!("unbound slot {slot} issued DMA to iova {iova:#x}"),
                )),
            }
        })();
        if let Some((kind, detail)) = verdict {
            record(s, device, kind, detail);
        }
    });
}

/// The IOMMU refused a DMA (translation fault). Refinement runs both ways:
/// if the model *would* have permitted the access, the simulator dropped
/// legal traffic.
pub fn check_dma_fault(device: u32, slot: u32, iova: u64, write: bool) {
    with_state(|s| {
        let Some(m) = s.devices.get(&device) else { return };
        if let Some((_, span)) = m.iopt_at(iova) {
            if (!write || span.write) && m.slot_owner(slot as usize) == Some(span.owner) {
                record(
                    s,
                    device,
                    "dropped_legal_dma",
                    format!("slot {slot} faulted on iova {iova:#x} the model permits"),
                );
            }
        }
    });
}

/// An MMIO access was delivered to accelerator `slot`; `base`/`size` is
/// that slot's BAR page. Delivery outside the page is a containment
/// violation regardless of how the auditor's arithmetic got there.
pub fn check_mmio_deliver(device: u32, slot: usize, addr: u64, base: u64, size: u64) {
    with_state(|s| {
        if addr.wrapping_sub(base) >= size {
            record(
                s,
                device,
                "mmio_out_of_page",
                format!("addr {addr:#x} delivered to slot {slot} page [{base:#x}, +{size:#x})"),
            );
        }
    });
}

/// A guest MMIO write's *effect* reached a physical register file: the
/// hypervisor forwarded `vm`'s write at `addr` into `slot`'s registers.
/// The slot must currently be bound to `vm` — forwarding another tenant's
/// cached or live write into a slot mutates a register file that tenant
/// does not own, even if delivery routing (page containment) was correct.
pub fn check_mmio_write(device: u32, slot: usize, vm: u32, addr: u64) {
    with_state(|s| {
        let owner = s.devices.get(&device).and_then(|m| m.slot_owner(slot));
        if owner != Some(vm) {
            record(
                s,
                device,
                "mmio_foreign_regfile",
                format!(
                    "vm {vm} write at {addr:#x} forwarded into slot {slot} register file \
                     bound to {owner:?}"
                ),
            );
        }
    });
}

/// A CPU-side guest access (`write_mem`/`read_mem`) touched
/// `hpa..hpa+len` on behalf of `vm`: the whole span must be covered by
/// frames whose entitlement set admits `vm` (owner, or live retriever with
/// sufficient permission). Frames are claimed at the hypercall's
/// granularity (2 MB or 4 KB), so the check walks contiguous frames until
/// the span is covered rather than assuming one frame suffices.
pub fn check_cpu(device: u32, hpa: u64, len: u64, vm: u32, write: bool) {
    with_state(|s| {
        let kind = if write { "cpu_write" } else { "cpu_read" };
        let verdict: Option<(&'static str, String)> = (|| {
            let Some(m) = s.devices.get(&device) else {
                return Some((
                    "cpu_unowned",
                    format!("{kind} of hpa {hpa:#x} on unmodeled device"),
                ));
            };
            let end = hpa + len;
            let mut cur = hpa;
            loop {
                match m.frame_at(cur) {
                    Some((base, e)) => {
                        if !e.allows(vm, write) {
                            return Some((
                                "cpu_cross_tenant",
                                format!("vm {vm} {kind} hpa {cur:#x}: {}", e.provenance()),
                            ));
                        }
                        let span_end = base + e.len;
                        if span_end >= end {
                            return None;
                        }
                        cur = span_end;
                    }
                    None => {
                        let k = if cur == hpa { "cpu_unowned" } else { "cpu_overrun" };
                        return Some((
                            k,
                            format!("vm {vm} {kind} [{hpa:#x}, +{len:#x}) uncovered at {cur:#x}"),
                        ));
                    }
                }
            }
        })();
        if let Some((kind, detail)) = verdict {
            record(s, device, kind, detail);
        }
    });
}

/// One migration frame copy: the source span must belong to the detached
/// tenant (`src_vm` on `src_device`), the destination span to the freshly
/// attached one (`dst_vm` on `dst_device`). Cross-device share syncs reuse
/// this check with each side's registered (device, vm) pair.
pub fn check_adopt(
    src_device: u32,
    src_hpa: u64,
    src_vm: u32,
    dst_device: u32,
    dst_hpa: u64,
    dst_vm: u32,
) {
    with_state(|s| {
        let src_owner = s
            .devices
            .get(&src_device)
            .and_then(|m| m.frame_at(src_hpa))
            .map(|(_, e)| e.owner);
        if src_owner != Some(src_vm) {
            record(
                s,
                src_device,
                "adopt_src_mismatch",
                format!("migration read hpa {src_hpa:#x} owned by {src_owner:?}, not vm {src_vm}"),
            );
        }
        let dst_owner = s
            .devices
            .get(&dst_device)
            .and_then(|m| m.frame_at(dst_hpa))
            .map(|(_, e)| e.owner);
        if dst_owner != Some(dst_vm) {
            record(
                s,
                dst_device,
                "adopt_dst_mismatch",
                format!("migration wrote hpa {dst_hpa:#x} owned by {dst_owner:?}, not vm {dst_vm}"),
            );
        }
    });
}

/// Live-update thaw verified an IOPT entry against the persistent device:
/// the model (which also persisted across the freeze) must agree.
pub fn check_thaw(device: u32, iova: u64, hpa: u64) {
    with_state(|s| {
        let modeled = s
            .devices
            .get(&device)
            .and_then(|m| m.iopt_at(iova))
            .map(|(base, span)| span.hpa + (iova - base));
        if modeled != Some(hpa) {
            record(
                s,
                device,
                "thaw_mismatch",
                format!("thawed iopt entry {iova:#x}→{hpa:#x}; model says {modeled:?}"),
            );
        }
    });
}

// ---- Parallel chunk plumbing ---------------------------------------------

/// Removes `device`'s model from this thread so a worker can own it for a
/// parallel span. Returns `None` if the device has no model yet (the
/// worker starts it fresh via `or_default`).
pub fn export_device(device: u32) -> Option<DeviceChunk> {
    with_state(|s| s.devices.remove(&device).map(|model| DeviceChunk { device, model }))
}

/// Installs a model exported by [`export_device`] into this thread.
pub fn import_device(chunk: DeviceChunk) {
    with_state(|s| {
        s.devices.insert(chunk.device, chunk.model);
    });
}

/// Drains this thread's violations (count, retained list) for the main
/// thread to [`absorb_violations`] in device-index order.
pub fn take_violations() -> (u64, Vec<Violation>) {
    with_state(|s| {
        let count = std::mem::take(&mut s.count);
        let v = std::mem::take(&mut s.violations);
        (count, v)
    })
}

/// Merges a worker's drained violations into this thread's totals.
pub fn absorb_violations((count, v): (u64, Vec<Violation>)) {
    with_state(|s| {
        s.count += count;
        for violation in v {
            if s.violations.len() < MAX_RETAINED {
                s.violations.push(violation);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() {
        set_enabled(true);
        reset();
    }

    #[test]
    fn in_model_dma_passes_and_cross_tenant_dma_violates() {
        fresh();
        map_page(0, 0x10_0000, 0x20_0000, 0x1000, true, 7);
        bind_slot(0, 2, 7);
        check_dma(0, 2, 0x10_0040, 0x20_0040, true);
        assert_eq!(violation_count(), 0);
        // Another tenant's slot reaching the same span is a violation.
        bind_slot(0, 3, 9);
        check_dma(0, 3, 0x10_0040, 0x20_0040, false);
        assert_eq!(violation_count(), 1);
        assert_eq!(violations()[0].kind, "dma_cross_tenant");
    }

    #[test]
    fn wrong_hpa_and_unmapped_and_unbound_are_distinct_kinds() {
        fresh();
        map_page(0, 0x0, 0x1000, 0x1000, true, 1);
        bind_slot(0, 0, 1);
        check_dma(0, 0, 0x40, 0x2040, false);
        check_dma(0, 0, 0x9999_0000, 0x0, false);
        unbind_slot(0, 0);
        check_dma(0, 0, 0x40, 0x1040, false);
        let kinds: Vec<_> = violations().iter().map(|v| v.kind).collect();
        assert_eq!(kinds, ["dma_wrong_hpa", "dma_unmapped", "dma_unbound_slot"]);
    }

    #[test]
    fn fault_on_modeled_mapping_is_dropped_legal_dma() {
        fresh();
        map_page(0, 0x0, 0x1000, 0x1000, true, 1);
        bind_slot(0, 0, 1);
        // Fault on an unmapped iova agrees with the model: no violation.
        check_dma_fault(0, 0, 0xdead_0000, false);
        assert_eq!(violation_count(), 0);
        // Fault on a mapped, owned iova means the simulator dropped legal
        // traffic.
        check_dma_fault(0, 0, 0x80, false);
        assert_eq!(violations()[0].kind, "dropped_legal_dma");
    }

    #[test]
    fn unmap_keeps_frame_ownership_for_migration_copies() {
        fresh();
        map_page(0, 0x10_0000, 0x20_0000, 0x20_0000, true, 4);
        unmap_page(0, 0x10_0000);
        map_page(1, 0x30_0000, 0x50_0000, 0x20_0000, true, 0);
        check_adopt(0, 0x20_0000, 4, 1, 0x50_0000, 0);
        assert_eq!(violation_count(), 0);
        // Copying from a frame the detached tenant never owned is flagged.
        check_adopt(0, 0x9000_0000, 4, 1, 0x50_0000, 0);
        assert_eq!(violations()[0].kind, "adopt_src_mismatch");
    }

    #[test]
    fn hpa_reallocation_to_a_second_tenant_is_flagged() {
        fresh();
        map_page(0, 0x10_0000, 0x20_0000, 0x1000, true, 1);
        map_page(0, 0x90_0000, 0x20_0000, 0x1000, true, 2);
        assert_eq!(violations()[0].kind, "hpa_reallocated");
    }

    #[test]
    fn cpu_checks_walk_contiguous_frames() {
        fresh();
        // A 2 MB guest page registered as 512 contiguous 4 KB hypercalls.
        for k in 0..512u64 {
            map_page(0, 0x10_0000 + k * 0x1000, 0x20_0000 + k * 0x1000, 0x1000, true, 3);
        }
        // A CPU write spanning many frames is fine if all are owned.
        check_cpu(0, 0x20_0000, 0x20_0000, 3, true);
        assert_eq!(violation_count(), 0);
        // Running past the last owned frame is an overrun.
        check_cpu(0, 0x20_0000, 0x20_0000 + 0x1000, 3, true);
        assert_eq!(violations()[0].kind, "cpu_overrun");
        // Another tenant touching the span is cross-tenant.
        check_cpu(0, 0x20_0040, 0x40, 9, false);
        assert_eq!(violations()[1].kind, "cpu_cross_tenant");
        // A completely unowned address is distinct from an overrun.
        check_cpu(0, 0x9000_0000, 0x40, 3, false);
        assert_eq!(violations()[2].kind, "cpu_unowned");
    }

    #[test]
    fn mmio_page_containment() {
        fresh();
        check_mmio_deliver(0, 1, 0x12040, 0x12000, 0x1000);
        assert_eq!(violation_count(), 0);
        check_mmio_deliver(0, 1, 0x13000, 0x12000, 0x1000);
        assert_eq!(violations()[0].kind, "mmio_out_of_page");
        // Wrap-around below the base must not be accepted.
        check_mmio_deliver(0, 1, 0x11fff, 0x12000, 0x1000);
        assert_eq!(violation_count(), 2);
    }

    #[test]
    fn export_import_round_trips_across_threads() {
        fresh();
        map_page(3, 0x0, 0x1000, 0x1000, true, 5);
        bind_slot(3, 0, 5);
        let chunk = export_device(3).expect("model exists");
        // Simulate the worker: fresh thread state, imported model.
        let handle = std::thread::spawn(move || {
            set_enabled(true);
            import_device(chunk);
            check_dma(3, 0, 0x40, 0x1040, false);
            check_dma(3, 0, 0x40, 0xbad0, false); // one violation
            (export_device(3).expect("still there"), take_violations())
        });
        let (chunk, violations_chunk) = handle.join().unwrap();
        import_device(chunk);
        absorb_violations(violations_chunk);
        assert_eq!(violation_count(), 1);
        // The re-imported model still checks.
        check_dma(3, 0, 0x80, 0x1080, false);
        assert_eq!(violation_count(), 1);
    }

    #[test]
    fn violation_retention_caps_but_count_does_not() {
        fresh();
        for i in 0..(MAX_RETAINED as u64 + 10) {
            check_dma(0, 0, i * 64, 0, false);
        }
        assert_eq!(violations().len(), MAX_RETAINED);
        assert_eq!(violation_count(), MAX_RETAINED as u64 + 10);
    }

    // ---- Entitlement-set (shared-memory channel) tests ---------------------

    #[test]
    fn retrieved_span_admits_retriever_dma_and_cpu_per_permission() {
        fresh();
        // Owner vm 1 maps a frame; vm 2 retrieves it read-only at its own
        // IOVA through handle 0x5.
        map_page(0, 0x10_0000, 0x20_0000, 0x20_0000, true, 1);
        retrieve_page(0, 0x80_0000, 0x20_0000, 0x20_0000, false, 2, Some(1), 0x5);
        bind_slot(0, 0, 1);
        bind_slot(0, 1, 2);
        // Retriever reads through its own IOPT span: clean.
        check_dma(0, 1, 0x80_0040, 0x20_0040, false);
        check_cpu(0, 0x20_0040, 0x40, 2, false);
        assert_eq!(violation_count(), 0);
        // Retriever *writing* the ro span via CPU is cross-tenant, and the
        // detail carries the live-handle provenance.
        check_cpu(0, 0x20_0040, 0x40, 2, true);
        assert_eq!(violations()[0].kind, "cpu_cross_tenant");
        assert!(violations()[0].detail.contains("live handle 0x5 -> vm 2 (ro)"));
        // Retriever ro DMA write is refused at the IOPT permission.
        check_dma(0, 1, 0x80_0040, 0x20_0040, true);
        assert_eq!(violations()[1].kind, "dma_perm");
        // Owner keeps full access throughout.
        check_cpu(0, 0x20_0000, 0x1000, 1, true);
        assert_eq!(violation_count(), 2);
    }

    #[test]
    fn relinquished_handle_probe_carries_full_ownership_history() {
        fresh();
        map_page(0, 0x10_0000, 0x20_0000, 0x20_0000, true, 1);
        retrieve_page(0, 0x80_0000, 0x20_0000, 0x20_0000, true, 2, Some(1), 0x9);
        bind_slot(0, 1, 2);
        check_dma(0, 1, 0x80_0040, 0x20_0040, true);
        assert_eq!(violation_count(), 0);
        relinquish_page(0, 0x80_0000, 0x20_0000, 2, 0x9, "relinquished");
        // A stale access to the now-relinquished span must fault like an
        // unmap — and the violation names the ended entitlement.
        check_dma(0, 1, 0x80_0040, 0x20_0040, true);
        assert_eq!(violations()[0].kind, "dma_unmapped");
        assert!(violations()[0].detail.contains("owner=vm 1"));
        assert!(violations()[0].detail.contains("relinquished handle 0x9 -> vm 2 (rw)"));
        // The retriever's CPU access is also revoked.
        check_cpu(0, 0x20_0040, 0x40, 2, false);
        assert_eq!(violations()[1].kind, "cpu_cross_tenant");
        assert!(violations()[1].detail.contains("relinquished handle 0x9"));
        // A correctly-faulted probe agrees with the model: no
        // dropped_legal_dma for the torn-down iova.
        check_dma_fault(0, 1, 0x80_0040, true);
        assert_eq!(violation_count(), 2);
    }

    #[test]
    fn retrieve_of_foreign_frame_is_share_bad_owner() {
        fresh();
        map_page(0, 0x10_0000, 0x20_0000, 0x1000, true, 1);
        // Claiming vm 3 owns the span when vm 1 does is flagged, and no
        // IOPT span is installed.
        retrieve_page(0, 0x80_0000, 0x20_0000, 0x1000, false, 2, Some(3), 0x7);
        assert_eq!(violations()[0].kind, "share_bad_owner");
        bind_slot(0, 1, 2);
        check_dma(0, 1, 0x80_0040, 0x20_0040, false);
        assert_eq!(violations()[1].kind, "dma_unmapped");
    }

    #[test]
    fn cross_device_mirror_retrieve_claims_frame_for_retriever() {
        fresh();
        // owner=None: a mirror frame on the retriever's device.
        retrieve_page(1, 0x80_0000, 0x40_0000, 0x20_0000, true, 6, None, 0x11);
        bind_slot(1, 0, 6);
        check_dma(1, 0, 0x80_0040, 0x40_0040, true);
        check_cpu(1, 0x40_0000, 0x100, 6, true);
        assert_eq!(violation_count(), 0);
        // Sync copies adopt-check against the mirror's claimed vm.
        check_adopt(1, 0x40_0000, 6, 1, 0x40_0000, 6);
        assert_eq!(violation_count(), 0);
    }

    #[test]
    fn double_relinquish_is_flagged() {
        fresh();
        map_page(0, 0x10_0000, 0x20_0000, 0x1000, true, 1);
        retrieve_page(0, 0x80_0000, 0x20_0000, 0x1000, false, 2, Some(1), 0x2);
        relinquish_page(0, 0x80_0000, 0x20_0000, 2, 0x2, "relinquished");
        assert_eq!(violation_count(), 0);
        relinquish_page(0, 0x80_0000, 0x20_0000, 2, 0x2, "reclaimed");
        let kinds: Vec<_> = violations().iter().map(|v| v.kind).collect();
        assert!(kinds.contains(&"unmap_unknown"));
        assert!(kinds.contains(&"relinquish_unknown"));
    }

    #[test]
    fn foreign_regfile_write_is_flagged_and_owned_write_is_not() {
        fresh();
        bind_slot(0, 2, 7);
        check_mmio_write(0, 2, 7, 0x2040);
        assert_eq!(violation_count(), 0);
        check_mmio_write(0, 2, 9, 0x2040);
        assert_eq!(violations()[0].kind, "mmio_foreign_regfile");
        unbind_slot(0, 2);
        check_mmio_write(0, 2, 7, 0x2040);
        assert_eq!(violation_count(), 2);
    }
}
