//! Global simulated-cycle accounting and the fast-forward toggle.
//!
//! Every cycle kernel in the workspace (the fabric device, the host-centric
//! platform) reports the fabric cycles it simulates to a process-wide
//! counter. Bench reports read the counter alongside wall-clock time to
//! compute a `sim_rate` (simulated fabric cycles per wall-second), making
//! the simulator's own performance trajectory machine-readable across PRs.
//!
//! The module also owns the `OPTIMUS_NO_FASTFWD` escape hatch: setting it to
//! anything other than `0`/empty disables event-horizon fast-forwarding and
//! forces per-cycle stepping everywhere. Fast-forward is *bit-exact* by
//! construction, so the toggle exists for differential testing and for
//! debugging the fast-forward machinery itself, not for correctness.

use crate::time::Cycle;
use std::sync::atomic::{AtomicU64, Ordering};

static SIM_CYCLES: AtomicU64 = AtomicU64::new(0);

/// Credits `cycles` fabric cycles to the process-wide simulation counter.
///
/// Kernels call this once per `run`/`advance` batch, not per cycle, so the
/// counter costs nothing on the per-step hot path.
pub fn add_cycles(cycles: Cycle) {
    SIM_CYCLES.fetch_add(cycles, Ordering::Relaxed);
}

/// Total fabric cycles simulated by this process so far.
pub fn cycles() -> Cycle {
    SIM_CYCLES.load(Ordering::Relaxed)
}

/// Whether event-horizon fast-forwarding is enabled (the default).
///
/// `OPTIMUS_NO_FASTFWD=1` (or any non-empty value other than `0`) disables
/// it. Kernels sample this at construction; tests can override per instance
/// via their `set_fast_forward` methods.
pub fn fast_forward_enabled() -> bool {
    match std::env::var("OPTIMUS_NO_FASTFWD") {
        Ok(v) => v.is_empty() || v == "0",
        Err(_) => true,
    }
}

/// Default burst length for batched stepping (cycles executed per
/// dispatch when a machine is busy at the horizon; see
/// `PlatformClock::advance_toward_batched`).
pub const DEFAULT_BATCH_STEP: Cycle = 64;

/// The batched-stepping burst length: `OPTIMUS_BATCH_STEP=<k>` overrides
/// the default; `0` or `1` disables batching (one horizon scan per stepped
/// cycle, the pre-batching behavior). Batching is bit-exact either way —
/// the knob exists for differential testing and for profiling the horizon
/// scan itself. Kernels sample this at construction; tests can override
/// per instance via their `set_batch_step` methods.
pub fn batch_step_cycles() -> Cycle {
    match std::env::var("OPTIMUS_BATCH_STEP") {
        Ok(v) if !v.trim().is_empty() => v.trim().parse::<Cycle>().unwrap_or(DEFAULT_BATCH_STEP).max(1),
        _ => DEFAULT_BATCH_STEP,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let before = cycles();
        add_cycles(123);
        add_cycles(877);
        assert!(cycles() >= before + 1000);
    }
}
