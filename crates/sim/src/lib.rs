//! Deterministic simulation kernel for the OPTIMUS reproduction.
//!
//! This crate provides the infrastructure shared by every simulated hardware
//! component in the workspace:
//!
//! * [`rng`] — deterministic, seedable pseudo-random number generators
//!   (SplitMix64 and xoshiro256\*\*). Experiments must be reproducible, so the
//!   simulator never uses ambient OS entropy.
//! * [`perm`] — O(1) pseudo-random permutations built from a Feistel network,
//!   used to lay out multi-gigabyte linked lists lazily without materializing
//!   them.
//! * [`time`] — the fabric clock domain (400 MHz), nanosecond/cycle
//!   conversions, and clock dividers for slower accelerator clocks.
//! * [`queue`] — latency-carrying FIFOs used to model pipelined links.
//! * [`stats`] — throughput and latency accounting used by the benchmark
//!   harness.
//! * [`clock`] — the [`clock::PlatformClock`] protocol every steppable
//!   platform implements (`now`/`next_event`/`step_cycle`/`skip_to`),
//!   with the event-horizon fast-forward kernel as a provided method.
//! * [`simrate`] — process-wide simulated-cycle accounting and the
//!   `OPTIMUS_NO_FASTFWD` fast-forward toggle.
//! * [`trace`] — the flight recorder: cycle-stamped events from every
//!   layer into a bounded ring buffer, exported as Chrome `trace_event`
//!   JSON for Perfetto, gated behind `OPTIMUS_TRACE`.
//! * [`metrics`] — the always-on metrics plane: per-device/per-tenant
//!   counters, gauges, and log2-bucketed histograms behind a branch-free
//!   masked accumulate path (`OPTIMUS_METRICS=off` to disable), with
//!   Prometheus/JSON exposition.
//! * [`journal`] — the job-lifecycle journal: every submitted job gets a
//!   stable `JobId` and a cycle-stamped phase record (submit → queued →
//!   installed → executing → … → complete), from which per-tenant SLO
//!   accounting (latency breakdowns, p50/p95/p99, goodput) is derived;
//!   on by default, `OPTIMUS_JOURNAL=0` to disable.
//! * [`spec`] — the executable isolation specification: a per-device
//!   model of which tenant may touch which HPA, updated only from the
//!   hypervisor's history and refinement-checked against every host
//!   memory access the simulator performs, gated behind `OPTIMUS_SPEC`.
//!
//! # Examples
//!
//! ```
//! use optimus_sim::rng::Xoshiro256;
//! use optimus_sim::time::{ns_to_cycles, FABRIC_HZ};
//!
//! let mut rng = Xoshiro256::seed_from(42);
//! let sample = rng.next_u64();
//! assert_eq!(sample, Xoshiro256::seed_from(42).next_u64());
//! assert_eq!(FABRIC_HZ, 400_000_000);
//! assert_eq!(ns_to_cycles(33.0), 13); // one multiplexer-tree level
//! ```

pub mod clock;
pub mod hashing;
pub mod journal;
pub mod metrics;
pub mod perm;
pub mod queue;
pub mod rng;
pub mod simrate;
pub mod spec;
pub mod stats;
pub mod time;
pub mod trace;

pub use clock::PlatformClock;
pub use perm::FeistelPermutation;
pub use queue::TimedQueue;
pub use rng::{SplitMix64, Xoshiro256};
pub use stats::{LatencyStats, ThroughputMeter};
pub use time::{ClockDivider, Cycle};
