//! O(1) pseudo-random permutations.
//!
//! The paper's `LinkedList` micro-benchmark walks a linked list whose nodes
//! are "distributed randomly in DRAM" across working sets of up to 8 GB.
//! Materializing such a list up front would defeat the lazily allocated
//! [`HostMemory`](../../optimus_mem/index.html) model, so instead the list
//! layout is defined by a *pseudo-random permutation* `π` over node indices:
//! the node stored in slot `i` points at slot `π(i)`. A permutation is
//! computable in O(1) in both directions from a seed, so any memory page of
//! the list region can be synthesized on first touch.
//!
//! [`FeistelPermutation`] implements a balanced 4-round Feistel network over
//! the smallest even-width bit domain covering the requested size, with
//! cycle-walking to restrict the domain to exactly `[0, n)`.

use crate::rng::SplitMix64;

/// A seeded pseudo-random permutation of `[0, n)`.
///
/// Both [`apply`](Self::apply) (forward) and [`invert`](Self::invert)
/// (backward) run in expected O(1) time.
///
/// # Examples
///
/// ```
/// use optimus_sim::perm::FeistelPermutation;
///
/// let p = FeistelPermutation::new(1000, 0xfeed);
/// let image = p.apply(123);
/// assert!(image < 1000);
/// assert_eq!(p.invert(image), 123);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeistelPermutation {
    n: u64,
    half_bits: u32,
    keys: [u64; 4],
}

const ROUNDS: usize = 4;

impl FeistelPermutation {
    /// Creates a permutation of `[0, n)` from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: u64, seed: u64) -> Self {
        assert!(n > 0, "permutation domain must be non-empty");
        // Smallest even bit-width whose domain covers n.
        let bits = 64 - (n - 1).leading_zeros().max(0);
        let bits = bits.max(2);
        let half_bits = bits.div_ceil(2);
        let mut sm = SplitMix64::new(seed);
        let keys = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Self { n, half_bits, keys }
    }

    /// The size of the permuted domain.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Returns `true` if the domain has exactly one element.
    ///
    /// (A permutation domain is never empty; see [`new`](Self::new).)
    pub fn is_empty(&self) -> bool {
        false
    }

    fn round(&self, r: usize, x: u64) -> u64 {
        let mask = (1u64 << self.half_bits) - 1;
        SplitMix64::mix(x ^ self.keys[r]) & mask
    }

    fn encrypt_once(&self, v: u64) -> u64 {
        let mask = (1u64 << self.half_bits) - 1;
        let mut left = (v >> self.half_bits) & mask;
        let mut right = v & mask;
        for r in 0..ROUNDS {
            let next_left = right;
            right = left ^ self.round(r, right);
            left = next_left;
        }
        (left << self.half_bits) | right
    }

    fn decrypt_once(&self, v: u64) -> u64 {
        let mask = (1u64 << self.half_bits) - 1;
        let mut left = (v >> self.half_bits) & mask;
        let mut right = v & mask;
        for r in (0..ROUNDS).rev() {
            let prev_right = left;
            left = right ^ self.round(r, left);
            right = prev_right;
        }
        (left << self.half_bits) | right
    }

    /// Maps `index` through the permutation.
    ///
    /// # Panics
    ///
    /// Panics if `index >= n`.
    pub fn apply(&self, index: u64) -> u64 {
        assert!(index < self.n, "index {index} out of domain 0..{}", self.n);
        // Cycle-walk until the value lands back inside [0, n). The Feistel
        // network permutes the padded power-of-two domain, so walking visits
        // each out-of-range value at most once and terminates.
        let mut v = self.encrypt_once(index);
        while v >= self.n {
            v = self.encrypt_once(v);
        }
        v
    }

    /// Inverts the permutation: `invert(apply(i)) == i`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= n`.
    pub fn invert(&self, index: u64) -> u64 {
        assert!(index < self.n, "index {index} out of domain 0..{}", self.n);
        let mut v = self.decrypt_once(index);
        while v >= self.n {
            v = self.decrypt_once(v);
        }
        v
    }

    /// The successor function used for linked-list layouts.
    ///
    /// Defines a traversal `i → successor(i)` whose orbit from any starting
    /// node eventually revisits the start (the permutation decomposes the
    /// domain into disjoint cycles). For a random Feistel permutation the
    /// expected cycle length containing a random element is `Θ(n)`, which is
    /// long enough for every latency experiment in the paper.
    pub fn successor(&self, index: u64) -> u64 {
        self.apply(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn small_domain_is_bijective() {
        for n in [1u64, 2, 3, 5, 8, 100, 1000, 4097] {
            let p = FeistelPermutation::new(n, 0xABCD);
            let mut seen = HashSet::new();
            for i in 0..n {
                let v = p.apply(i);
                assert!(v < n);
                assert!(seen.insert(v), "duplicate image for n={n}, i={i}");
            }
            assert_eq!(seen.len() as u64, n);
        }
    }

    #[test]
    fn invert_round_trips() {
        let p = FeistelPermutation::new(12345, 7);
        for i in (0..12345).step_by(17) {
            assert_eq!(p.invert(p.apply(i)), i);
            assert_eq!(p.apply(p.invert(i)), i);
        }
    }

    #[test]
    fn large_domain_round_trips() {
        // 8 GB of 64-byte nodes = 2^27 nodes.
        let p = FeistelPermutation::new(1 << 27, 99);
        for i in [0u64, 1, 12_345_678, (1 << 27) - 1] {
            let v = p.apply(i);
            assert!(v < (1 << 27));
            assert_eq!(p.invert(v), i);
        }
    }

    #[test]
    fn different_seeds_give_different_permutations() {
        let a = FeistelPermutation::new(1 << 20, 1);
        let b = FeistelPermutation::new(1 << 20, 2);
        let same = (0..64).filter(|&i| a.apply(i) == b.apply(i)).count();
        assert!(same < 8, "permutations nearly identical: {same}/64 fixed");
    }

    #[test]
    fn successor_walk_does_not_short_cycle() {
        let n = 1u64 << 16;
        let p = FeistelPermutation::new(n, 0xC0FFEE);
        let start = 0u64;
        let mut cur = start;
        let mut steps = 0u64;
        loop {
            cur = p.successor(cur);
            steps += 1;
            if cur == start || steps >= n {
                break;
            }
        }
        // The expected cycle length through a random element is ~n/2; reject
        // pathologically short cycles which would break latency experiments.
        assert!(steps > n / 64, "cycle length only {steps} of {n}");
    }

    #[test]
    fn domain_of_one_is_identity() {
        let p = FeistelPermutation::new(1, 5);
        assert_eq!(p.apply(0), 0);
        assert_eq!(p.invert(0), 0);
    }

    #[test]
    #[should_panic(expected = "out of domain")]
    fn apply_rejects_out_of_range() {
        FeistelPermutation::new(10, 0).apply(10);
    }
}
