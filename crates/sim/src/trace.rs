//! Flight recorder: cycle-stamped event tracing for the whole stack.
//!
//! Every layer of the simulator (hypervisor traps, IOTLB fills, channel
//! arbitration, mux-tree grants, preemption phases) can emit events into
//! a bounded per-thread ring buffer. The recorder exports Chrome
//! `trace_event` JSON that loads directly into Perfetto / `chrome://tracing`,
//! with one track per vAccel, per DMA link, and per mux node, plus a
//! per-track counter registry for aggregate dumps in bench reports.
//!
//! # Gating
//!
//! Tracing is **off by default** and enabled by the `OPTIMUS_TRACE`
//! environment variable (any non-empty value other than `"0"`), sampled
//! once per thread; tests can override per thread with [`set_enabled`].
//! When disabled every emit helper returns after a single thread-local
//! flag read, so instrumented hot paths cost one predictable branch.
//! Instrumentation is read-only with respect to simulation state — a
//! traced run and an untraced run of the same workload produce bit-equal
//! fingerprints (enforced by a differential property test in
//! `optimus-core`).
//!
//! # Bounds
//!
//! The ring buffer holds [`DEFAULT_CAPACITY`] events (override with
//! `OPTIMUS_TRACE_CAP`); when full, the oldest events are overwritten
//! and counted in [`dropped`], so memory stays bounded no matter how
//! long the run. Counters are exact regardless of ring occupancy.
//!
//! The recorder is thread-local on purpose: `cargo test` runs each test
//! on its own thread, so concurrent tests never interleave events, and
//! the hot path takes no lock.

use crate::time::Cycle;
use std::cell::{Cell, RefCell};
use std::collections::{BTreeSet, HashMap};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Default ring-buffer capacity, in events.
pub const DEFAULT_CAPACITY: usize = 1 << 18;

/// Microseconds per fabric cycle (400 MHz fabric → 2.5 ns → 0.0025 µs),
/// the unit Chrome trace timestamps are expressed in.
const US_PER_CYCLE: f64 = 0.0025;

/// Maximum number of key/value arguments attached to one event.
const MAX_ARGS: usize = 3;

/// A Perfetto track: a (process, thread) pair. Processes group the
/// architectural layers; threads are the per-instance lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Track {
    pid: u32,
    tid: u32,
}

impl Track {
    /// Hypervisor-global lane (scheduler decisions, slice boundaries).
    pub const fn hypervisor() -> Track {
        Track { pid: 1, tid: 0 }
    }

    /// One lane per vAccel (traps, hypercalls, preemption phases).
    pub const fn vaccel(id: u32) -> Track {
        Track { pid: 1, tid: 1 + id }
    }

    /// The IOMMU / IOTLB lane (hits, misses, evictions, page walks).
    pub const fn iommu() -> Track {
        Track { pid: 2, tid: 0 }
    }

    /// The channel-selector lane (UPI/PCIe switches).
    pub const fn channels() -> Track {
        Track { pid: 2, tid: 1 }
    }

    /// One lane per physical-accelerator DMA link (round-trips).
    pub const fn link(accel: usize) -> Track {
        Track {
            pid: 2,
            tid: 2 + accel as u32,
        }
    }

    /// One lane per mux-tree node (grants and stalls).
    pub const fn mux_node(node: usize) -> Track {
        Track {
            pid: 3,
            tid: node as u32,
        }
    }

    /// One lane per accelerator slot / auditor (save/restore streaming).
    pub const fn accel(slot: usize) -> Track {
        Track {
            pid: 4,
            tid: slot as u32,
        }
    }

    /// Human-readable process name for the Perfetto process rail.
    fn process_name(self) -> &'static str {
        match self.pid {
            1 => "hypervisor",
            2 => "host-interface",
            3 => "mux-tree",
            _ => "accelerators",
        }
    }

    /// Human-readable thread (track) name.
    fn thread_name(self) -> String {
        match (self.pid, self.tid) {
            (1, 0) => "scheduler".to_string(),
            (1, t) => format!("vaccel{}", t - 1),
            (2, 0) => "iommu".to_string(),
            (2, 1) => "channel-selector".to_string(),
            (2, t) => format!("link{}", t - 2),
            (3, t) => format!("node{t}"),
            (_, t) => format!("accel{t}"),
        }
    }

    /// Stable label used for counter keys and plain-text dumps.
    fn label(self) -> String {
        format!("{}/{}", self.process_name(), self.thread_name())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    /// A point-in-time marker (`ph: "i"`).
    Instant,
    /// A span with a known duration at emit time (`ph: "X"`).
    Complete,
    /// Opening edge of a nesting span (`ph: "B"`).
    Begin,
    /// Closing edge of a nesting span (`ph: "E"`).
    End,
    /// Flow-arrow start (`ph: "s"`): the `dur` field carries the flow id.
    FlowStart,
    /// Flow-arrow finish (`ph: "f"`, binding `bp: "e"`); id in `dur`.
    FlowEnd,
}

#[derive(Debug, Clone, Copy)]
struct Event {
    track: Track,
    name: &'static str,
    kind: EventKind,
    ts: Cycle,
    dur: Cycle,
    args: [(&'static str, u64); MAX_ARGS],
    nargs: u8,
}

#[derive(Debug, Default)]
struct Recorder {
    buf: Vec<Event>,
    /// Next overwrite position once `buf.len() == cap`.
    head: usize,
    cap: usize,
    dropped: u64,
    /// Hash-indexed so [`counter_value`] polls are O(1) (watchdogs and
    /// tests); deterministic dumps sort a snapshot in [`counters`].
    counters: HashMap<(Track, &'static str), u64>,
}

impl Recorder {
    fn with_capacity(cap: usize) -> Recorder {
        Recorder {
            cap: cap.max(1),
            ..Recorder::default()
        }
    }

    fn push(&mut self, ev: Event) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Events in emission (chronological) order.
    fn ordered(&self) -> impl Iterator<Item = &Event> {
        self.buf[self.head..].iter().chain(self.buf[..self.head].iter())
    }
}

fn env_enabled() -> bool {
    match std::env::var("OPTIMUS_TRACE") {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    }
}

fn env_capacity() -> usize {
    std::env::var("OPTIMUS_TRACE_CAP")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&c| c > 0)
        .unwrap_or(DEFAULT_CAPACITY)
}

thread_local! {
    static ENABLED: Cell<bool> = Cell::new(env_enabled());
    static RECORDER: RefCell<Recorder> = RefCell::new(Recorder::with_capacity(env_capacity()));
}

/// Returns `true` if the flight recorder is capturing on this thread.
///
/// A single thread-local read; instrumentation sites branch on this and
/// fall through untouched when tracing is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.with(|c| c.get())
}

/// Overrides the `OPTIMUS_TRACE` gate for the current thread (used by
/// tests and the differential trace-on/off property).
pub fn set_enabled(on: bool) {
    ENABLED.with(|c| c.set(on));
}

/// Discards all recorded events and counters (capacity is kept).
pub fn reset() {
    RECORDER.with(|r| {
        let mut r = r.borrow_mut();
        r.buf.clear();
        r.head = 0;
        r.dropped = 0;
        r.counters.clear();
    });
}

/// Resizes the ring buffer (dropping anything recorded so far).
pub fn set_capacity(cap: usize) {
    RECORDER.with(|r| *r.borrow_mut() = Recorder::with_capacity(cap));
}

/// Number of events currently held in the ring.
pub fn event_count() -> usize {
    RECORDER.with(|r| r.borrow().buf.len())
}

/// Number of events overwritten because the ring was full.
pub fn dropped() -> u64 {
    RECORDER.with(|r| r.borrow().dropped)
}

/// Events and counters drained from one thread's recorder, for replay on
/// another thread. The node layer uses this to merge worker-thread
/// recordings back into the main recorder in device-index order, so a
/// parallel run's trace is byte-identical to a serial run's.
///
/// The contents are opaque: a chunk only moves between recorders.
#[derive(Debug, Default)]
pub struct TraceChunk {
    events: Vec<Event>,
    counters: HashMap<(Track, &'static str), u64>,
    dropped: u64,
}

impl TraceChunk {
    /// Number of events carried.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the chunk carries neither events nor counters.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.counters.is_empty() && self.dropped == 0
    }
}

/// Drains this thread's recorder into a [`TraceChunk`] (events in
/// emission order; the recorder is left empty with its capacity kept).
pub fn take_chunk() -> TraceChunk {
    RECORDER.with(|r| {
        let mut r = r.borrow_mut();
        let events: Vec<Event> = r.ordered().copied().collect();
        r.buf.clear();
        r.head = 0;
        TraceChunk {
            events,
            counters: std::mem::take(&mut r.counters),
            dropped: std::mem::take(&mut r.dropped),
        }
    })
}

/// Replays a chunk into this thread's recorder as if its events had been
/// emitted here: ring bounds and drop accounting apply as usual, and
/// counters accumulate.
pub fn absorb_chunk(chunk: TraceChunk) {
    RECORDER.with(|r| {
        let mut r = r.borrow_mut();
        for ev in chunk.events {
            r.push(ev);
        }
        r.dropped += chunk.dropped;
        for (key, v) in chunk.counters {
            *r.counters.entry(key).or_insert(0) += v;
        }
    });
}

#[inline]
fn emit(track: Track, name: &'static str, kind: EventKind, ts: Cycle, dur: Cycle, args: &[(&'static str, u64)]) {
    let mut packed = [("", 0u64); MAX_ARGS];
    let nargs = args.len().min(MAX_ARGS);
    packed[..nargs].copy_from_slice(&args[..nargs]);
    RECORDER.with(|r| {
        r.borrow_mut().push(Event {
            track,
            name,
            kind,
            ts,
            dur,
            args: packed,
            nargs: nargs as u8,
        })
    });
}

/// Emits a point-in-time marker at cycle `ts`.
#[inline]
pub fn instant(track: Track, name: &'static str, ts: Cycle, args: &[(&'static str, u64)]) {
    if !enabled() {
        return;
    }
    emit(track, name, EventKind::Instant, ts, 0, args);
}

/// Emits a span whose duration is already known (e.g. a trap cost or a
/// DMA round-trip), stamped at its *start* cycle.
#[inline]
pub fn complete(track: Track, name: &'static str, ts: Cycle, dur: Cycle, args: &[(&'static str, u64)]) {
    if !enabled() {
        return;
    }
    emit(track, name, EventKind::Complete, ts, dur, args);
}

/// Opens a nesting span (close it with [`end`] on the same track).
#[inline]
pub fn begin(track: Track, name: &'static str, ts: Cycle, args: &[(&'static str, u64)]) {
    if !enabled() {
        return;
    }
    emit(track, name, EventKind::Begin, ts, 0, args);
}

/// Closes the innermost open span on `track`.
#[inline]
pub fn end(track: Track, name: &'static str, ts: Cycle) {
    if !enabled() {
        return;
    }
    emit(track, name, EventKind::End, ts, 0, &[]);
}

/// Opens a flow arrow (Perfetto `ph:"s"`): connect with a later
/// [`flow_end`] carrying the same `id` (the job-lifecycle journal keys
/// flows by `JobId`, so one job reads as one connected lane across
/// preemption, migration, and share handoffs).
#[inline]
pub fn flow_start(track: Track, name: &'static str, ts: Cycle, id: u64) {
    if !enabled() {
        return;
    }
    emit(track, name, EventKind::FlowStart, ts, id, &[]);
}

/// Terminates a flow arrow (Perfetto `ph:"f"`, `bp:"e"`) opened by a
/// [`flow_start`] with the same `id`.
#[inline]
pub fn flow_end(track: Track, name: &'static str, ts: Cycle, id: u64) {
    if !enabled() {
        return;
    }
    emit(track, name, EventKind::FlowEnd, ts, id, &[]);
}

/// Adds `delta` to the per-track counter `name` in the registry.
#[inline]
pub fn count(track: Track, name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    RECORDER.with(|r| {
        *r.borrow_mut().counters.entry((track, name)).or_insert(0) += delta;
    });
}

/// Snapshot of the counter registry as `("layer/track counter", value)`
/// pairs in deterministic (track, name) order.
pub fn counters() -> Vec<(String, u64)> {
    RECORDER.with(|r| {
        let r = r.borrow();
        let mut entries: Vec<(&(Track, &'static str), &u64)> = r.counters.iter().collect();
        entries.sort_unstable_by_key(|&(&(track, name), _)| (track, name));
        entries
            .into_iter()
            .map(|(&(track, name), &v)| (format!("{} {}", track.label(), name), v))
            .collect()
    })
}

/// Reads one counter back in O(1) (0 if never incremented). Counter
/// names are interned `&'static str`s, so the hash lookup needs no
/// allocation — cheap enough for watchdogs and tests to poll.
pub fn counter_value(track: Track, name: &'static str) -> u64 {
    RECORDER.with(|r| {
        r.borrow()
            .counters
            .get(&(track, name))
            .copied()
            .unwrap_or(0)
    })
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders everything recorded on this thread as Chrome `trace_event`
/// JSON (the format Perfetto and `chrome://tracing` load natively).
///
/// Events are sorted by cycle timestamp, so the `cycle` argument of
/// successive `traceEvents` entries is monotone non-decreasing —
/// exploited by the CI trace validator. Timestamps (`ts`) and durations
/// (`dur`) are in microseconds of simulated time; the raw fabric-cycle
/// stamp rides along in `args.cycle` (and `args.dur_cycles` for spans).
pub fn chrome_trace_json() -> String {
    RECORDER.with(|r| {
        let r = r.borrow();
        let mut events: Vec<&Event> = r.ordered().collect();
        events.sort_by_key(|e| e.ts);

        let tracks: BTreeSet<Track> = events.iter().map(|e| e.track).collect();
        let pids: BTreeSet<u32> = tracks.iter().map(|t| t.pid).collect();

        let mut out = String::with_capacity(events.len() * 128 + 1024);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        let sep = |out: &mut String, first: &mut bool| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push_str("\n  ");
        };

        for &pid in &pids {
            sep(&mut out, &mut first);
            let name = tracks
                .iter()
                .find(|t| t.pid == pid)
                .map(|t| t.process_name())
                .unwrap_or("?");
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":\"{name}\"}}}}"
            );
        }
        for track in &tracks {
            sep(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":{},\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":",
                track.pid, track.tid
            );
            push_json_str(&mut out, &track.thread_name());
            out.push_str("}}");
        }

        for e in events {
            sep(&mut out, &mut first);
            let ph = match e.kind {
                EventKind::Instant => "i",
                EventKind::Complete => "X",
                EventKind::Begin => "B",
                EventKind::End => "E",
                EventKind::FlowStart => "s",
                EventKind::FlowEnd => "f",
            };
            let _ = write!(
                out,
                "{{\"ph\":\"{ph}\",\"pid\":{},\"tid\":{},\"name\":",
                e.track.pid, e.track.tid
            );
            push_json_str(&mut out, e.name);
            let _ = write!(out, ",\"ts\":{:.4}", e.ts as f64 * US_PER_CYCLE);
            if e.kind == EventKind::Complete {
                let _ = write!(out, ",\"dur\":{:.4}", e.dur as f64 * US_PER_CYCLE);
            }
            if e.kind == EventKind::Instant {
                out.push_str(",\"s\":\"t\"");
            }
            if matches!(e.kind, EventKind::FlowStart | EventKind::FlowEnd) {
                // Flow id rides in `dur`; the journal passes the JobId.
                let _ = write!(out, ",\"cat\":\"job\",\"id\":{}", e.dur);
                if e.kind == EventKind::FlowEnd {
                    out.push_str(",\"bp\":\"e\"");
                }
            }
            let _ = write!(out, ",\"args\":{{\"cycle\":{}", e.ts);
            if e.kind == EventKind::Complete {
                let _ = write!(out, ",\"dur_cycles\":{}", e.dur);
            }
            for &(k, v) in &e.args[..e.nargs as usize] {
                out.push(',');
                push_json_str(&mut out, k);
                let _ = write!(out, ":{v}");
            }
            out.push_str("}}");
        }

        let _ = write!(
            out,
            "\n],\"displayTimeUnit\":\"ns\",\"otherData\":{{\"dropped_events\":{}}}}}\n",
            r.dropped
        );
        out
    })
}

/// Renders the counter registry as plain text, one `layer/track counter
/// = value` line per entry, for appending to bench reports.
pub fn counters_dump() -> String {
    let mut out = String::new();
    for (key, value) in counters() {
        let _ = writeln!(out, "{key} = {value}");
    }
    out
}

/// Writes [`chrome_trace_json`] to `path`.
pub fn write_chrome_trace(path: &Path) -> io::Result<()> {
    std::fs::write(path, chrome_trace_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each #[test] runs on its own thread, so the thread-local recorder
    // is naturally isolated between tests.

    #[test]
    fn disabled_recorder_stays_empty() {
        set_enabled(false);
        instant(Track::iommu(), "iotlb_miss", 10, &[]);
        complete(Track::vaccel(0), "mmio_trap", 5, 800, &[]);
        count(Track::iommu(), "misses", 1);
        assert_eq!(event_count(), 0);
        assert!(counters().is_empty());
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        set_enabled(true);
        set_capacity(4);
        for i in 0..6u64 {
            instant(Track::hypervisor(), "tick", i, &[("i", i)]);
        }
        assert_eq!(event_count(), 4);
        assert_eq!(dropped(), 2);
        let json = chrome_trace_json();
        // Oldest two (cycle 0 and 1) were overwritten.
        assert!(!json.contains("\"cycle\":0,"));
        assert!(!json.contains("\"cycle\":1,"));
        assert!(json.contains("\"cycle\":2"));
        assert!(json.contains("\"cycle\":5"));
        assert!(json.contains("\"dropped_events\":2"));
    }

    #[test]
    fn counters_accumulate_per_track() {
        set_enabled(true);
        reset();
        count(Track::iommu(), "misses", 2);
        count(Track::iommu(), "misses", 3);
        count(Track::vaccel(1), "traps", 1);
        assert_eq!(counter_value(Track::iommu(), "misses"), 5);
        assert_eq!(counter_value(Track::vaccel(1), "traps"), 1);
        let dump = counters_dump();
        assert!(dump.contains("host-interface/iommu misses = 5"));
        assert!(dump.contains("hypervisor/vaccel1 traps = 1"));
    }

    #[test]
    fn chrome_json_has_metadata_and_sorted_cycles() {
        set_enabled(true);
        reset();
        // Emit deliberately out of cycle order (a span stamped at its
        // start can be emitted after later instants).
        instant(Track::iommu(), "iotlb_miss", 40, &[("set", 7)]);
        complete(Track::link(0), "dma_read", 12, 100, &[("bytes", 64)]);
        begin(Track::vaccel(0), "preempt.drain", 50, &[]);
        end(Track::vaccel(0), "preempt.drain", 90);
        let json = chrome_trace_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"name\":\"vaccel0\""));
        assert!(json.contains("\"name\":\"link0\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        // Sorted: the dma_read at cycle 12 precedes the miss at 40.
        let dma = json.find("dma_read").unwrap();
        let miss = json.find("iotlb_miss").unwrap();
        assert!(dma < miss);
        // 12 cycles = 0.03 µs.
        assert!(json.contains("\"ts\":0.0300"));
    }

    #[test]
    fn flow_events_render_with_id_and_binding_point() {
        set_enabled(true);
        reset();
        flow_start(Track::vaccel(0), "job", 100, 0x1_0000_0007);
        flow_end(Track::vaccel(3), "job", 900, 0x1_0000_0007);
        let json = chrome_trace_json();
        assert!(json.contains("\"ph\":\"s\""));
        assert!(json.contains("\"ph\":\"f\""));
        assert!(json.contains("\"cat\":\"job\",\"id\":4294967303"));
        assert!(json.contains("\"bp\":\"e\""));
        // Flows never leak a dur field (the id rides there internally).
        assert!(!json.contains("\"dur\":"));
        reset();
    }

    #[test]
    fn chunk_round_trip_preserves_events_and_counters() {
        set_enabled(true);
        reset();
        instant(Track::iommu(), "iotlb_miss", 40, &[("set", 7)]);
        complete(Track::link(0), "dma_read", 12, 100, &[("bytes", 64)]);
        count(Track::iommu(), "misses", 3);
        let direct = chrome_trace_json();
        let chunk = take_chunk();
        assert_eq!(chunk.len(), 2);
        assert_eq!(event_count(), 0);
        assert!(counters().is_empty());
        absorb_chunk(chunk);
        assert_eq!(chrome_trace_json(), direct);
        assert_eq!(counter_value(Track::iommu(), "misses"), 3);
        reset();
    }

    #[test]
    fn chunks_absorb_cross_thread_in_caller_order() {
        set_enabled(true);
        reset();
        let mut chunks = Vec::new();
        for dev in 0..2u64 {
            chunks.push(
                std::thread::spawn(move || {
                    set_enabled(true);
                    instant(Track::accel(dev as usize), "tick", 10 + dev, &[]);
                    count(Track::accel(dev as usize), "ticks", 1);
                    take_chunk()
                })
                .join()
                .expect("worker"),
            );
        }
        for c in chunks {
            absorb_chunk(c);
        }
        assert_eq!(event_count(), 2);
        assert_eq!(counter_value(Track::accel(0), "ticks"), 1);
        assert_eq!(counter_value(Track::accel(1), "ticks"), 1);
        let json = chrome_trace_json();
        assert!(json.contains("\"cycle\":10"));
        assert!(json.contains("\"cycle\":11"));
        reset();
    }

    #[test]
    fn reset_clears_events_and_counters() {
        set_enabled(true);
        instant(Track::channels(), "channel_switch", 1, &[]);
        count(Track::channels(), "switches", 1);
        reset();
        assert_eq!(event_count(), 0);
        assert_eq!(dropped(), 0);
        assert!(counters().is_empty());
    }
}
