//! Clock domains and time conversion.
//!
//! The global simulation clock is the FPGA *fabric* clock: the Arria 10 on
//! Intel Skylake HARP runs its shell, hardware monitor, and interconnect
//! interface at 400 MHz (2.5 ns per cycle). Benchmarks synthesized at lower
//! frequencies (Table 1 of the paper: 100 or 200 MHz) are stepped through
//! [`ClockDivider`]s.

/// A point in simulated time, measured in fabric clock cycles.
pub type Cycle = u64;

/// Fabric clock frequency in Hz (400 MHz on Skylake HARP).
pub const FABRIC_HZ: u64 = 400_000_000;

/// Nanoseconds per fabric cycle (2.5 ns).
pub const NS_PER_CYCLE: f64 = 1e9 / FABRIC_HZ as f64;

/// DMA payload size: one CPU cache line.
pub const CACHE_LINE: usize = 64;

/// Converts a duration in nanoseconds to fabric cycles, rounding to nearest.
///
/// # Examples
///
/// ```
/// use optimus_sim::time::ns_to_cycles;
/// assert_eq!(ns_to_cycles(2.5), 1);
/// assert_eq!(ns_to_cycles(100.0), 40);
/// ```
pub fn ns_to_cycles(ns: f64) -> Cycle {
    (ns / NS_PER_CYCLE).round() as Cycle
}

/// Converts fabric cycles to nanoseconds.
pub fn cycles_to_ns(cycles: Cycle) -> f64 {
    cycles as f64 * NS_PER_CYCLE
}

/// Converts microseconds to fabric cycles.
pub fn us_to_cycles(us: f64) -> Cycle {
    ns_to_cycles(us * 1e3)
}

/// Converts milliseconds to fabric cycles.
pub fn ms_to_cycles(ms: f64) -> Cycle {
    ns_to_cycles(ms * 1e6)
}

/// Converts fabric cycles to seconds.
pub fn cycles_to_secs(cycles: Cycle) -> f64 {
    cycles as f64 / FABRIC_HZ as f64
}

/// Derives a throughput in GB/s from bytes moved over a cycle window.
///
/// Returns 0 for an empty window.
pub fn gbps(bytes: u64, cycles: Cycle) -> f64 {
    if cycles == 0 {
        return 0.0;
    }
    bytes as f64 / cycles_to_secs(cycles) / 1e9
}

/// Steps a slower clock domain off the 400 MHz fabric clock.
///
/// A benchmark synthesized at 200 MHz ticks once every 2 fabric cycles; at
/// 100 MHz, once every 4. The divider answers "does this fabric cycle carry
/// a rising edge of my clock?".
///
/// # Examples
///
/// ```
/// use optimus_sim::time::ClockDivider;
///
/// let mut d = ClockDivider::from_mhz(200);
/// let edges: Vec<bool> = (0..4).map(|c| d.tick(c)).collect();
/// assert_eq!(edges, [true, false, true, false]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockDivider {
    divisor: u64,
}

impl ClockDivider {
    /// Creates a divider for a clock running at `fabric_hz / divisor`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn new(divisor: u64) -> Self {
        assert!(divisor > 0, "clock divisor must be positive");
        Self { divisor }
    }

    /// Creates a divider for a frequency given in MHz.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is zero or does not evenly divide the 400 MHz fabric
    /// clock (HARP's PLLs only expose integer dividers to benchmarks).
    pub fn from_mhz(mhz: u64) -> Self {
        assert!(mhz > 0, "frequency must be positive");
        let fabric_mhz = FABRIC_HZ / 1_000_000;
        assert_eq!(
            fabric_mhz % mhz,
            0,
            "{mhz} MHz does not divide the {fabric_mhz} MHz fabric clock"
        );
        Self::new(fabric_mhz / mhz)
    }

    /// Returns `true` when fabric cycle `now` carries a rising edge.
    pub fn tick(&mut self, now: Cycle) -> bool {
        now % self.divisor == 0
    }

    /// First fabric cycle at or after `at` that carries a rising edge.
    ///
    /// The divider is stateless modulo arithmetic, so skipping fabric cycles
    /// between edges cannot perturb it — this is what makes clock dividers
    /// safe under event-horizon fast-forwarding.
    ///
    /// # Examples
    ///
    /// ```
    /// use optimus_sim::time::ClockDivider;
    ///
    /// let d = ClockDivider::from_mhz(100); // edge every 4 fabric cycles
    /// assert_eq!(d.next_edge(0), 0);
    /// assert_eq!(d.next_edge(1), 4);
    /// assert_eq!(d.next_edge(4), 4);
    /// assert_eq!(d.next_edge(5), 8);
    /// ```
    pub fn next_edge(&self, at: Cycle) -> Cycle {
        at.div_ceil(self.divisor) * self.divisor
    }

    /// The divisor relative to the fabric clock.
    pub fn divisor(&self) -> u64 {
        self.divisor
    }

    /// The derived clock frequency in Hz.
    pub fn hz(&self) -> u64 {
        FABRIC_HZ / self.divisor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_round_trip() {
        for cycles in [0u64, 1, 13, 40, 4_000_000] {
            assert_eq!(ns_to_cycles(cycles_to_ns(cycles)), cycles);
        }
    }

    #[test]
    fn milliseconds_convert() {
        // 10 ms time slice = 4M fabric cycles.
        assert_eq!(ms_to_cycles(10.0), 4_000_000);
    }

    #[test]
    fn gbps_full_rate() {
        // One 64-byte line per cycle at 400 MHz = 25.6 GB/s.
        let t = gbps(64 * 400_000_000, FABRIC_HZ);
        assert!((t - 25.6).abs() < 1e-9, "got {t}");
    }

    #[test]
    fn gbps_empty_window_is_zero() {
        assert_eq!(gbps(100, 0), 0.0);
    }

    #[test]
    fn divider_100mhz_every_fourth() {
        let mut d = ClockDivider::from_mhz(100);
        let edges: Vec<Cycle> = (0..12).filter(|&c| d.tick(c)).collect();
        assert_eq!(edges, [0, 4, 8]);
        assert_eq!(d.hz(), 100_000_000);
    }

    #[test]
    fn divider_400mhz_every_cycle() {
        let mut d = ClockDivider::from_mhz(400);
        assert!((0..8).all(|c| d.tick(c)));
    }

    #[test]
    #[should_panic(expected = "does not divide")]
    fn divider_rejects_non_integer_ratio() {
        ClockDivider::from_mhz(300);
    }

    #[test]
    fn next_edge_agrees_with_tick() {
        for mhz in [400u64, 200, 100, 50] {
            let mut d = ClockDivider::from_mhz(mhz);
            for at in 0..32u64 {
                let edge = d.next_edge(at);
                assert!(edge >= at);
                assert!(d.tick(edge), "{mhz} MHz: {edge} is not an edge");
                // No edge strictly between `at` and the reported one.
                assert!((at..edge).all(|c| !d.tick(c)), "{mhz} MHz at {at}");
            }
        }
    }
}
