//! Measurement utilities for the benchmark harness.
//!
//! Every figure in the paper reports either a latency distribution
//! ([`LatencyStats`]) or an aggregate bandwidth over a measurement window
//! ([`ThroughputMeter`]). Both support *warm-up exclusion*: the paper's
//! numbers are steady-state, so the harness discards samples collected
//! before caches, IOTLBs, and arbitration pipelines settle.

use crate::time::{cycles_to_ns, gbps, Cycle};

/// Online latency accumulator (count / mean / min / max / percentiles).
///
/// Stores raw samples so exact percentiles can be computed; experiment
/// windows in this workspace collect at most a few hundred thousand samples,
/// so this stays cheap.
///
/// # Examples
///
/// ```
/// use optimus_sim::stats::LatencyStats;
///
/// let mut stats = LatencyStats::new();
/// for v in [10, 20, 30] {
///     stats.record(v);
/// }
/// assert_eq!(stats.count(), 3);
/// assert_eq!(stats.mean_cycles(), 20.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    samples: Vec<Cycle>,
    sorted: bool,
}

impl LatencyStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample, in fabric cycles.
    pub fn record(&mut self, cycles: Cycle) {
        self.samples.push(cycles);
        self.sorted = false;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean latency in fabric cycles (0 if empty).
    pub fn mean_cycles(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64
    }

    /// Mean latency in nanoseconds (0 if empty).
    pub fn mean_ns(&self) -> f64 {
        self.mean_cycles() * cycles_to_ns(1)
    }

    /// Minimum sample in cycles (0 if empty).
    pub fn min_cycles(&self) -> Cycle {
        self.samples.iter().copied().min().unwrap_or(0)
    }

    /// Maximum sample in cycles (0 if empty).
    pub fn max_cycles(&self) -> Cycle {
        self.samples.iter().copied().max().unwrap_or(0)
    }

    /// Exact percentile (`q` in `[0, 1]`) in cycles; 0 if empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn percentile_cycles(&mut self, q: f64) -> Cycle {
        assert!((0.0..=1.0).contains(&q), "percentile must be in [0, 1]");
        if self.samples.is_empty() {
            return 0;
        }
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        let rank = ((self.samples.len() - 1) as f64 * q).round() as usize;
        self.samples[rank]
    }

    /// Discards the first `n` samples (warm-up exclusion).
    pub fn discard_prefix(&mut self, n: usize) {
        let n = n.min(self.samples.len());
        self.samples.drain(..n);
        self.sorted = false;
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }
}

/// Byte counter over an explicit measurement window.
///
/// Components call [`add_bytes`](Self::add_bytes) on every data transfer;
/// the harness brackets the steady-state region with
/// [`open_window`](Self::open_window) / [`close_window`](Self::close_window)
/// and reads back GB/s.
///
/// # Examples
///
/// ```
/// use optimus_sim::stats::ThroughputMeter;
///
/// let mut m = ThroughputMeter::new();
/// m.open_window(0);
/// m.add_bytes(64 * 400_000_000);
/// m.close_window(400_000_000); // one second of fabric cycles
/// assert!((m.gbps() - 25.6).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ThroughputMeter {
    bytes: u64,
    window_start: Cycle,
    window_end: Option<Cycle>,
    counting: bool,
}

impl ThroughputMeter {
    /// Creates a meter; counting is disabled until a window opens.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts the measurement window at cycle `now`, zeroing the counter.
    pub fn open_window(&mut self, now: Cycle) {
        self.bytes = 0;
        self.window_start = now;
        self.window_end = None;
        self.counting = true;
    }

    /// Ends the measurement window at cycle `now`.
    pub fn close_window(&mut self, now: Cycle) {
        self.window_end = Some(now.max(self.window_start));
        self.counting = false;
    }

    /// Accumulates transferred bytes if a window is open.
    pub fn add_bytes(&mut self, bytes: u64) {
        if self.counting {
            self.bytes += bytes;
        }
    }

    /// Total bytes observed inside the window.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Window length in cycles (0 if the window never closed).
    pub fn window_cycles(&self) -> Cycle {
        self.window_end
            .map(|end| end - self.window_start)
            .unwrap_or(0)
    }

    /// Measured bandwidth in GB/s (0 if the window never closed or is empty).
    pub fn gbps(&self) -> f64 {
        gbps(self.bytes, self.window_cycles())
    }
}

/// Formats a ratio as a percentage string with one decimal, e.g. `"90.1%"`.
pub fn pct(ratio: f64) -> String {
    format!("{:.1}%", ratio * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_basic_moments() {
        let mut s = LatencyStats::new();
        for v in [1u64, 2, 3, 4, 5] {
            s.record(v);
        }
        assert_eq!(s.count(), 5);
        assert_eq!(s.mean_cycles(), 3.0);
        assert_eq!(s.min_cycles(), 1);
        assert_eq!(s.max_cycles(), 5);
    }

    #[test]
    fn latency_percentiles() {
        let mut s = LatencyStats::new();
        for v in 1..=100u64 {
            s.record(v);
        }
        assert_eq!(s.percentile_cycles(0.0), 1);
        assert_eq!(s.percentile_cycles(1.0), 100);
        let p50 = s.percentile_cycles(0.5);
        assert!((49..=51).contains(&p50));
    }

    #[test]
    fn latency_empty_is_zero() {
        let mut s = LatencyStats::new();
        assert_eq!(s.mean_cycles(), 0.0);
        assert_eq!(s.percentile_cycles(0.5), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn latency_discard_prefix() {
        let mut s = LatencyStats::new();
        for v in [100u64, 100, 1, 1] {
            s.record(v);
        }
        s.discard_prefix(2);
        assert_eq!(s.mean_cycles(), 1.0);
        s.discard_prefix(10); // more than remaining: empties, no panic
        assert!(s.is_empty());
    }

    #[test]
    fn latency_merge() {
        let mut a = LatencyStats::new();
        a.record(10);
        let mut b = LatencyStats::new();
        b.record(20);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean_cycles(), 15.0);
    }

    #[test]
    fn throughput_window_brackets_counting() {
        let mut m = ThroughputMeter::new();
        m.add_bytes(1_000_000); // before window: ignored
        m.open_window(100);
        m.add_bytes(640);
        m.close_window(200);
        m.add_bytes(1_000_000); // after window: ignored
        assert_eq!(m.bytes(), 640);
        assert_eq!(m.window_cycles(), 100);
    }

    #[test]
    fn throughput_full_line_rate() {
        let mut m = ThroughputMeter::new();
        m.open_window(0);
        m.add_bytes(64 * 400_000_000);
        m.close_window(400_000_000);
        assert!((m.gbps() - 25.6).abs() < 1e-9);
    }

    #[test]
    fn throughput_unclosed_window_reports_zero() {
        let mut m = ThroughputMeter::new();
        m.open_window(0);
        m.add_bytes(640);
        assert_eq!(m.gbps(), 0.0);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.901), "90.1%");
        assert_eq!(pct(1.242), "124.2%");
    }
}
