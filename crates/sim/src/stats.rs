//! Measurement utilities for the benchmark harness.
//!
//! Every figure in the paper reports either a latency distribution
//! ([`LatencyStats`]) or an aggregate bandwidth over a measurement window
//! ([`ThroughputMeter`]). Both support *warm-up exclusion*: the paper's
//! numbers are steady-state, so the harness discards samples collected
//! before caches, IOTLBs, and arbitration pipelines settle.

use crate::time::{cycles_to_ns, gbps, Cycle};
use std::cell::{Cell, RefCell};

/// Online latency accumulator (count / mean / min / max / percentiles).
///
/// Stores raw samples so exact percentiles can be computed; experiment
/// windows in this workspace collect at most a few hundred thousand samples,
/// so this stays cheap. `samples` is always kept in insertion
/// (chronological) order — percentile queries sort a lazily rebuilt
/// scratch copy instead, so [`discard_prefix`](Self::discard_prefix)
/// removes the *earliest* samples no matter what was queried before.
///
/// # Examples
///
/// ```
/// use optimus_sim::stats::LatencyStats;
///
/// let mut stats = LatencyStats::new();
/// for v in [10, 20, 30] {
///     stats.record(v);
/// }
/// assert_eq!(stats.count(), 3);
/// assert_eq!(stats.mean_cycles(), 20.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    samples: Vec<Cycle>,
    /// Lazily sorted copy of `samples`, behind interior mutability so
    /// read-only consumers (reports, watchdogs) can query percentiles
    /// through a shared reference.
    scratch: RefCell<Vec<Cycle>>,
    scratch_valid: Cell<bool>,
}

impl LatencyStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample, in fabric cycles.
    pub fn record(&mut self, cycles: Cycle) {
        self.samples.push(cycles);
        self.scratch_valid.set(false);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean latency in fabric cycles (0 if empty).
    pub fn mean_cycles(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64
    }

    /// Mean latency in nanoseconds (0 if empty).
    pub fn mean_ns(&self) -> f64 {
        self.mean_cycles() * cycles_to_ns(1)
    }

    /// Minimum sample in cycles (0 if empty).
    pub fn min_cycles(&self) -> Cycle {
        self.samples.iter().copied().min().unwrap_or(0)
    }

    /// Maximum sample in cycles (0 if empty).
    pub fn max_cycles(&self) -> Cycle {
        self.samples.iter().copied().max().unwrap_or(0)
    }

    /// Exact percentile (`q` in `[0, 1]`) in cycles; 0 if empty.
    ///
    /// Uses the standard *nearest-rank* definition: the smallest sample
    /// such that at least `q · N` samples are less than or equal to it
    /// (rank `⌈q·N⌉`, with `q = 0` mapping to the minimum). For an
    /// even-count sample the median is therefore the *lower* middle
    /// element, never an interpolated or upper value.
    ///
    /// Sorting happens in a scratch copy behind interior mutability, so
    /// the query takes `&self` and the chronological order of the
    /// recorded samples is preserved for
    /// [`discard_prefix`](Self::discard_prefix).
    ///
    /// ```
    /// use optimus_sim::stats::LatencyStats;
    ///
    /// let mut stats = LatencyStats::new();
    /// for v in [1, 2, 3, 4] {
    ///     stats.record(v);
    /// }
    /// assert_eq!(stats.percentile_cycles(0.5), 2); // nearest rank ⌈0.5·4⌉ = 2
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn percentile_cycles(&self, q: f64) -> Cycle {
        assert!((0.0..=1.0).contains(&q), "percentile must be in [0, 1]");
        if self.samples.is_empty() {
            return 0;
        }
        let mut scratch = self.scratch.borrow_mut();
        if !self.scratch_valid.get() {
            scratch.clear();
            scratch.extend_from_slice(&self.samples);
            scratch.sort_unstable();
            self.scratch_valid.set(true);
        }
        let rank = ((scratch.len() as f64 * q).ceil() as usize).max(1);
        scratch[rank - 1]
    }

    /// Discards the first `n` samples *in recording order* (warm-up
    /// exclusion). Chronological even if a percentile was queried first.
    pub fn discard_prefix(&mut self, n: usize) {
        let n = n.min(self.samples.len());
        self.samples.drain(..n);
        self.scratch_valid.set(false);
    }

    /// Merges another accumulator into this one; `other`'s samples are
    /// appended after this accumulator's in chronological position.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.samples.extend_from_slice(&other.samples);
        self.scratch_valid.set(false);
    }
}

/// Byte counter over an explicit measurement window.
///
/// Components call [`add_bytes`](Self::add_bytes) on every data transfer;
/// the harness brackets the steady-state region with
/// [`open_window`](Self::open_window) / [`close_window`](Self::close_window)
/// and reads back GB/s.
///
/// # Examples
///
/// ```
/// use optimus_sim::stats::ThroughputMeter;
///
/// let mut m = ThroughputMeter::new();
/// m.open_window(0);
/// m.add_bytes(64 * 400_000_000);
/// m.close_window(400_000_000); // one second of fabric cycles
/// assert!((m.gbps() - 25.6).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ThroughputMeter {
    bytes: u64,
    window_start: Cycle,
    window_end: Option<Cycle>,
    counting: bool,
    window_inverted: bool,
}

impl ThroughputMeter {
    /// Creates a meter; counting is disabled until a window opens.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts the measurement window at cycle `now`, zeroing the counter.
    pub fn open_window(&mut self, now: Cycle) {
        self.bytes = 0;
        self.window_start = now;
        self.window_end = None;
        self.counting = true;
        self.window_inverted = false;
    }

    /// Ends the measurement window at cycle `now`.
    ///
    /// Closing a window *before* it opened means the measurement code is
    /// mis-bracketed: this panics in debug builds and latches
    /// [`window_inverted`](Self::window_inverted) in release builds (the
    /// window length still clamps to zero so `gbps()` never goes
    /// negative, but the mistake is no longer silent).
    pub fn close_window(&mut self, now: Cycle) {
        if now < self.window_start {
            self.window_inverted = true;
            debug_assert!(
                false,
                "throughput window closed at cycle {now} before it opened at cycle {}",
                self.window_start
            );
        }
        self.window_end = Some(now.max(self.window_start));
        self.counting = false;
    }

    /// Returns `true` if a window was ever closed before it opened
    /// (mis-bracketed measurement code). Latched until the next
    /// [`open_window`](Self::open_window).
    pub fn window_inverted(&self) -> bool {
        self.window_inverted
    }

    /// Accumulates transferred bytes if a window is open.
    pub fn add_bytes(&mut self, bytes: u64) {
        if self.counting {
            self.bytes += bytes;
        }
    }

    /// Total bytes observed inside the window.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Window length in cycles (0 if the window never closed).
    pub fn window_cycles(&self) -> Cycle {
        self.window_end
            .map(|end| end - self.window_start)
            .unwrap_or(0)
    }

    /// Returns `true` when the meter cannot report a meaningful rate:
    /// the window never closed (or never opened), or closed with zero
    /// length (including an inverted close, whose length clamps to
    /// zero). The `window_inverted`-style companion flag for the
    /// divide-by-zero family of mis-measurements: [`gbps`](Self::gbps)
    /// reports 0 in this state instead of dividing by zero.
    pub fn window_degenerate(&self) -> bool {
        match self.window_end {
            None => true,
            Some(end) => end == self.window_start,
        }
    }

    /// Measured bandwidth in GB/s (0 if the window is
    /// [degenerate](Self::window_degenerate)).
    pub fn gbps(&self) -> f64 {
        if self.window_degenerate() {
            return 0.0;
        }
        gbps(self.bytes, self.window_cycles())
    }
}

/// Formats a ratio as a percentage string with one decimal, e.g. `"90.1%"`.
pub fn pct(ratio: f64) -> String {
    format!("{:.1}%", ratio * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_basic_moments() {
        let mut s = LatencyStats::new();
        for v in [1u64, 2, 3, 4, 5] {
            s.record(v);
        }
        assert_eq!(s.count(), 5);
        assert_eq!(s.mean_cycles(), 3.0);
        assert_eq!(s.min_cycles(), 1);
        assert_eq!(s.max_cycles(), 5);
    }

    #[test]
    fn latency_percentiles() {
        let mut s = LatencyStats::new();
        for v in 1..=100u64 {
            s.record(v);
        }
        assert_eq!(s.percentile_cycles(0.0), 1);
        assert_eq!(s.percentile_cycles(1.0), 100);
        let p50 = s.percentile_cycles(0.5);
        assert!((49..=51).contains(&p50));
    }

    #[test]
    fn latency_empty_is_zero() {
        let s = LatencyStats::new();
        assert_eq!(s.mean_cycles(), 0.0);
        assert_eq!(s.percentile_cycles(0.5), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn latency_discard_prefix() {
        let mut s = LatencyStats::new();
        for v in [100u64, 100, 1, 1] {
            s.record(v);
        }
        s.discard_prefix(2);
        assert_eq!(s.mean_cycles(), 1.0);
        s.discard_prefix(10); // more than remaining: empties, no panic
        assert!(s.is_empty());
    }

    /// Regression: `percentile_cycles` used to sort `samples` in place,
    /// so a percentile query followed by `discard_prefix` dropped the
    /// *smallest* n samples instead of the *earliest* n.
    #[test]
    fn latency_discard_prefix_is_chronological_after_percentile() {
        let mut s = LatencyStats::new();
        for v in [100u64, 100, 1, 1] {
            s.record(v);
        }
        let _ = s.percentile_cycles(0.5); // must not reorder the samples
        s.discard_prefix(2); // warm-up exclusion: drop the two 100s
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean_cycles(), 1.0, "discard dropped smallest, not earliest");
        assert_eq!(s.max_cycles(), 1);
        // And the percentiles of what's left are consistent.
        assert_eq!(s.percentile_cycles(1.0), 1);
    }

    /// Regression: the fractional-rank `round()` made the median of an
    /// even-count sample resolve to the upper middle; nearest-rank says
    /// the median of `[1,2,3,4]` is 2.
    #[test]
    fn latency_even_median_is_lower_middle() {
        let mut s = LatencyStats::new();
        for v in [1u64, 2, 3, 4] {
            s.record(v);
        }
        assert_eq!(s.percentile_cycles(0.5), 2);
        assert_eq!(s.percentile_cycles(0.25), 1);
        assert_eq!(s.percentile_cycles(0.75), 3);
        assert_eq!(s.percentile_cycles(0.0), 1);
        assert_eq!(s.percentile_cycles(1.0), 4);
    }

    /// Regression: `percentile_cycles` used to take `&mut self`, so
    /// read-only consumers (reports, watchdogs) couldn't query through
    /// a shared reference.
    #[test]
    fn latency_percentiles_through_shared_reference() {
        let mut s = LatencyStats::new();
        for v in [100u64, 100, 1, 1] {
            s.record(v);
        }
        let shared: &LatencyStats = &s;
        assert_eq!(shared.percentile_cycles(1.0), 100);
        assert_eq!(shared.percentile_cycles(0.0), 1);
        // The chronological guarantee still holds afterwards.
        s.discard_prefix(2);
        assert_eq!(s.mean_cycles(), 1.0);
    }

    #[test]
    fn latency_merge() {
        let mut a = LatencyStats::new();
        a.record(10);
        let mut b = LatencyStats::new();
        b.record(20);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean_cycles(), 15.0);
    }

    #[test]
    fn throughput_window_brackets_counting() {
        let mut m = ThroughputMeter::new();
        m.add_bytes(1_000_000); // before window: ignored
        m.open_window(100);
        m.add_bytes(640);
        m.close_window(200);
        m.add_bytes(1_000_000); // after window: ignored
        assert_eq!(m.bytes(), 640);
        assert_eq!(m.window_cycles(), 100);
    }

    #[test]
    fn throughput_full_line_rate() {
        let mut m = ThroughputMeter::new();
        m.open_window(0);
        m.add_bytes(64 * 400_000_000);
        m.close_window(400_000_000);
        assert!((m.gbps() - 25.6).abs() < 1e-9);
    }

    #[test]
    fn throughput_unclosed_window_reports_zero() {
        let mut m = ThroughputMeter::new();
        m.open_window(0);
        m.add_bytes(640);
        assert_eq!(m.gbps(), 0.0);
    }

    /// Regression: a zero-length or never-closed window used to be
    /// indistinguishable from a genuinely idle one; `window_degenerate`
    /// now flags it, and `gbps` reports 0 instead of dividing by zero.
    #[test]
    fn throughput_degenerate_window_is_flagged() {
        let fresh = ThroughputMeter::new();
        assert!(fresh.window_degenerate(), "never-opened meter is degenerate");
        assert_eq!(fresh.gbps(), 0.0);

        let mut open_only = ThroughputMeter::new();
        open_only.open_window(100);
        open_only.add_bytes(640);
        assert!(open_only.window_degenerate(), "never-closed window is degenerate");
        assert_eq!(open_only.gbps(), 0.0);

        let mut zero_len = ThroughputMeter::new();
        zero_len.open_window(100);
        zero_len.add_bytes(640);
        zero_len.close_window(100);
        assert!(zero_len.window_degenerate(), "zero-length window is degenerate");
        assert_eq!(zero_len.window_cycles(), 0);
        assert_eq!(zero_len.gbps(), 0.0);

        let mut ok = ThroughputMeter::new();
        ok.open_window(100);
        ok.add_bytes(640);
        ok.close_window(200);
        assert!(!ok.window_degenerate());
        assert!(ok.gbps() > 0.0);
    }

    /// Regression: closing a window before it opened used to clamp
    /// silently to a zero-length window (reading as 0 GB/s); now it
    /// panics in debug builds and latches `window_inverted`.
    #[test]
    fn throughput_inverted_window_fails_loudly() {
        let mut m = ThroughputMeter::new();
        m.open_window(100);
        m.add_bytes(640);
        let closed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.close_window(50)
        }));
        if cfg!(debug_assertions) {
            assert!(closed.is_err(), "debug build must panic on inverted window");
        } else {
            assert!(closed.is_ok());
        }
        assert!(m.window_inverted(), "inverted close must be latched");
        // A fresh window clears the latch.
        m.open_window(0);
        m.close_window(10);
        assert!(!m.window_inverted());
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.901), "90.1%");
        assert_eq!(pct(1.242), "124.2%");
    }
}
