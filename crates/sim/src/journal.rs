//! Job-lifecycle journal: causal phase records for every submitted job.
//!
//! Every `CMD_START` a tenant posts mints a stable [`JobId`] (the mint is
//! unconditional — ids are simulation state and exist whether or not the
//! journal records). When the journal is on, each job accumulates a
//! cycle-stamped phase list — submit → queued → installed → executing →
//! {preempted/saved/restored, migrated, frozen/thawed} → complete — from
//! which per-tenant SLO accounting (latency breakdowns, p50/p95/p99
//! end-to-end latency, goodput) is derived at export time and published
//! into the [`crate::metrics`] plane.
//!
//! # Gating
//!
//! The journal is **on by default** and disabled with `OPTIMUS_JOURNAL=0`
//! (or `off`/`false`), sampled once per thread; tests override per thread
//! with [`set_enabled`]. Every emit helper returns after one thread-local
//! flag read when disabled. Recording is read-only with respect to the
//! simulation: a journaled run and an unjournaled run of the same
//! workload produce bit-equal fingerprints (ci.sh stage 11).
//!
//! # Threading
//!
//! Like the flight recorder, the journal is thread-local. Worker threads
//! stepping devices drain their records into [`JournalChunk`]s which the
//! node layer absorbs on the main thread **in device-index order**, so a
//! parallel run's journal is byte-identical to a serial run's: a job
//! lives on exactly one device at a time, so its phase list is appended
//! in timestamp order regardless of the thread schedule.
//!
//! # Derivation
//!
//! Latency attribution happens at export time as a pure function of the
//! merged phase list (never at record time, where a worker's chunk could
//! not see main-thread phases). Each phase charges the time since the
//! previous phase to the current category, then moves the cursor:
//! queue (submitted/saved/migrated but not resident), install (register
//! replay + VCU window programming), compute (executing on the fabric),
//! preempt (drain/save + restore), share-stall (waiting on a share-linked
//! producer, carved out of queue). `Frozen`/`Thawed`/`Linked` are fully
//! transparent — they neither charge nor advance the cursor — so a
//! mid-run live-update leaves every derived figure untouched (ci.sh
//! stage 7 depends on this).

use crate::metrics;
use crate::time::Cycle;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;

/// Stable job identity: `((device_id + 1) << 32) | per-device counter`,
/// minted at submit and preserved across migration and live-update.
pub type JobId = u64;

/// One lifecycle transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// The guest posted `CMD_START`.
    Submit,
    /// The job entered its slot's scheduler queue.
    Queued,
    /// The hypervisor installed the tenant on the physical slot
    /// (register replay, VCU window programming).
    Installed,
    /// A preempted job's saved state was restored onto the slot.
    Restored,
    /// The accelerator is executing the job.
    Executing,
    /// The hypervisor issued `CMD_PREEMPT`; the drain began.
    Preempted,
    /// Drain/save finished; the job's state sits in guest memory.
    Saved,
    /// The accelerator refused the save (unmapped state buffer); the
    /// slot was force-reset and the job requeued from scratch.
    SaveRefused,
    /// The drain overran its deadline; the slot was force-reset.
    ForcedReset,
    /// The tenant was live-migrated onto another device.
    Migrated,
    /// The owning hypervisor froze into a snapshot (live-update).
    Frozen,
    /// The owning hypervisor thawed from a snapshot (live-update).
    Thawed,
    /// A share retrieve linked this (consumer) job to a producer job.
    Linked,
    /// The job ran to completion.
    Complete,
    /// The tenant was evicted with the job in flight.
    Evicted,
}

impl Phase {
    /// Stable lowercase name (JSON exports, tests).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Submit => "submit",
            Phase::Queued => "queued",
            Phase::Installed => "installed",
            Phase::Restored => "restored",
            Phase::Executing => "executing",
            Phase::Preempted => "preempted",
            Phase::Saved => "saved",
            Phase::SaveRefused => "save_refused",
            Phase::ForcedReset => "forced_reset",
            Phase::Migrated => "migrated",
            Phase::Frozen => "frozen",
            Phase::Thawed => "thawed",
            Phase::Linked => "linked",
            Phase::Complete => "complete",
            Phase::Evicted => "evicted",
        }
    }
}

/// One job's journal record.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct JobRecord {
    /// The minted job id.
    pub job: JobId,
    /// Owning tenant name (empty in a worker-side stub until merged).
    pub tenant: String,
    /// Submitting vaccel id (at submit time; migration re-mints vaccel
    /// ids but the job id is stable).
    pub vaccel: u32,
    /// Device the job was submitted on.
    pub device: u32,
    /// Working-set proxy: guest pages mapped at submit, in bytes.
    pub payload_bytes: u64,
    /// Producer job this (consumer) job reads through a share, if any.
    pub peer: Option<JobId>,
    /// Phase transitions in causal order.
    pub phases: Vec<(Phase, Cycle)>,
    /// Episodes already published into the metrics plane.
    published: usize,
}

/// How a derived episode ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Still running when the journal was read.
    InFlight,
    /// Reached [`Phase::Complete`].
    Completed,
    /// Reached [`Phase::Evicted`].
    Evicted,
}

/// Where each cycle of one submit→complete episode went.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Breakdown {
    /// Waiting in the scheduler queue (minus any share stall).
    pub queue: u64,
    /// Install cost: register replay + VCU window programming.
    pub install: u64,
    /// Executing on the fabric.
    pub compute: u64,
    /// Preemption overhead: drain/save plus restore.
    pub preempt: u64,
    /// Queue time overlapped with a share-linked producer still
    /// producing — carved out of `queue`.
    pub share_stall: u64,
}

/// One derived submit→{complete,evicted,now} episode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Episode {
    /// Submit timestamp.
    pub submit: Cycle,
    /// Complete/evict timestamp, or the last charged phase for an
    /// in-flight episode.
    pub end: Cycle,
    /// Latency attribution.
    pub breakdown: Breakdown,
    /// How the episode ended.
    pub outcome: Outcome,
    /// Working-set proxy at submit, bytes.
    pub payload_bytes: u64,
}

impl Episode {
    /// End-to-end latency in cycles (submit → end).
    pub fn e2e(&self) -> u64 {
        self.end.saturating_sub(self.submit)
    }
}

/// Exact nearest-rank distribution over one episode field, in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Dist {
    /// Samples aggregated.
    pub count: u64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
    pub mean: f64,
    pub max: u64,
}

impl Dist {
    fn from_samples(samples: &mut Vec<u64>) -> Dist {
        if samples.is_empty() {
            return Dist::default();
        }
        samples.sort_unstable();
        let n = samples.len();
        let rank = |q: f64| samples[((q * n as f64).ceil() as usize).clamp(1, n) - 1];
        Dist {
            count: n as u64,
            p50: rank(0.50),
            p95: rank(0.95),
            p99: rank(0.99),
            mean: samples.iter().sum::<u64>() as f64 / n as f64,
            max: samples[n - 1],
        }
    }
}

/// Per-tenant SLO summary derived from the journal.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSlo {
    /// Tenant name.
    pub tenant: String,
    /// Jobs submitted.
    pub submitted: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Jobs evicted in flight.
    pub evicted: u64,
    /// Jobs still in flight.
    pub in_flight: u64,
    /// Completed-job payload bytes.
    pub payload_bytes: u64,
    /// Completed payload bytes per second of span (first submit → last
    /// complete), at the 400 MHz fabric clock. 0 with no completions.
    pub goodput_bytes_per_sec: f64,
    /// End-to-end latency over completed jobs only.
    pub e2e: Dist,
    /// Breakdown distributions over all derived episodes (in-flight
    /// episodes charge up to their last recorded phase).
    pub queue: Dist,
    pub install: Dist,
    pub compute: Dist,
    pub preempt: Dist,
    pub share_stall: Dist,
}

#[derive(Debug, Default)]
struct Plane {
    recs: BTreeMap<JobId, JobRecord>,
}

fn env_enabled() -> bool {
    match std::env::var("OPTIMUS_JOURNAL") {
        Ok(v) => !(v == "0" || v == "off" || v == "false"),
        Err(_) => true,
    }
}

thread_local! {
    static ENABLED: Cell<bool> = Cell::new(env_enabled());
    static PLANE: RefCell<Plane> = RefCell::new(Plane::default());
}

/// Returns `true` if the journal is recording on this thread.
///
/// A single thread-local read; emission sites branch on this and fall
/// through untouched when journaling is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.with(|c| c.get())
}

/// Overrides the `OPTIMUS_JOURNAL` gate for the current thread (tests
/// and the journal-on/off differential property).
pub fn set_enabled(on: bool) {
    ENABLED.with(|c| c.set(on));
}

/// Discards every record on this thread.
pub fn reset() {
    PLANE.with(|p| p.borrow_mut().recs.clear());
}

/// Number of jobs journaled on this thread.
pub fn job_count() -> usize {
    PLANE.with(|p| p.borrow().recs.len())
}

/// Records a job submission: creates (or re-opens) the record and stamps
/// [`Phase::Submit`] followed by [`Phase::Queued`].
#[inline]
pub fn submit(job: JobId, tenant: &str, vaccel: u32, device: u32, payload_bytes: u64, ts: Cycle) {
    if !enabled() {
        return;
    }
    PLANE.with(|p| {
        let mut p = p.borrow_mut();
        let rec = p.recs.entry(job).or_insert_with(|| JobRecord {
            job,
            ..JobRecord::default()
        });
        rec.tenant = tenant.to_string();
        rec.vaccel = vaccel;
        rec.device = device;
        rec.payload_bytes = payload_bytes;
        rec.phases.push((Phase::Submit, ts));
        rec.phases.push((Phase::Queued, ts));
    });
}

/// Appends one phase transition to a job's record (creating a stub
/// record if this thread has never seen the job — worker threads stub
/// jobs submitted on the main thread, and the merge fills the metadata).
#[inline]
pub fn phase(job: JobId, phase: Phase, ts: Cycle) {
    if !enabled() {
        return;
    }
    PLANE.with(|p| {
        let mut p = p.borrow_mut();
        let rec = p.recs.entry(job).or_insert_with(|| JobRecord {
            job,
            ..JobRecord::default()
        });
        rec.phases.push((phase, ts));
    });
}

/// Links a consumer job to the producer job whose shared span it reads.
#[inline]
pub fn link(consumer: JobId, producer: JobId, ts: Cycle) {
    if !enabled() {
        return;
    }
    PLANE.with(|p| {
        let mut p = p.borrow_mut();
        let rec = p.recs.entry(consumer).or_insert_with(|| JobRecord {
            job: consumer,
            ..JobRecord::default()
        });
        rec.peer = Some(producer);
        rec.phases.push((Phase::Linked, ts));
    });
}

/// Records drained from one thread's journal for replay on another.
/// Contents are opaque; a chunk only moves between planes.
#[derive(Debug, Default)]
pub struct JournalChunk {
    recs: Vec<JobRecord>,
}

impl JournalChunk {
    /// Number of job records carried.
    pub fn len(&self) -> usize {
        self.recs.len()
    }

    /// Whether the chunk carries no records.
    pub fn is_empty(&self) -> bool {
        self.recs.is_empty()
    }
}

/// Drains this thread's journal into a [`JournalChunk`].
pub fn take_chunk() -> JournalChunk {
    PLANE.with(|p| JournalChunk {
        recs: std::mem::take(&mut p.borrow_mut().recs).into_values().collect(),
    })
}

/// Merges a chunk into this thread's journal: unknown jobs are inserted
/// whole; known jobs append the chunk's phases (a job runs on exactly
/// one device, so device-index-order absorption appends in timestamp
/// order) and fill any metadata the stub lacked.
pub fn absorb_chunk(chunk: JournalChunk) {
    PLANE.with(|p| {
        let mut p = p.borrow_mut();
        for rec in chunk.recs {
            match p.recs.entry(rec.job) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(rec);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let dst = e.get_mut();
                    if dst.tenant.is_empty() && !rec.tenant.is_empty() {
                        dst.tenant = rec.tenant;
                        dst.vaccel = rec.vaccel;
                        dst.device = rec.device;
                    }
                    if rec.payload_bytes != 0 {
                        dst.payload_bytes = rec.payload_bytes;
                    }
                    if dst.peer.is_none() {
                        dst.peer = rec.peer;
                    }
                    dst.phases.extend(rec.phases);
                }
            }
        }
    });
}

/// Clones every record in ascending [`JobId`] order (tests, exports).
pub fn export() -> Vec<JobRecord> {
    PLANE.with(|p| p.borrow().recs.values().cloned().collect())
}

/// Splits one record's phase list into submit→{complete,evicted,now}
/// episodes and attributes every cycle to a breakdown category.
///
/// `Frozen`/`Thawed`/`Linked` are transparent (no charge, no cursor
/// move, never the in-flight horizon), so live-update leaves every
/// derived figure bit-identical.
fn episodes(rec: &JobRecord) -> Vec<Episode> {
    #[derive(Clone, Copy, PartialEq)]
    enum Cat {
        Queue,
        Install,
        Compute,
        Preempt,
    }
    let mut out = Vec::new();
    let mut cur: Option<(Episode, Cat, Cycle)> = None;
    for &(ph, ts) in &rec.phases {
        if matches!(ph, Phase::Frozen | Phase::Thawed | Phase::Linked) {
            continue;
        }
        if ph == Phase::Submit {
            if let Some((ep, _, _)) = cur.take() {
                out.push(ep);
            }
            cur = Some((
                Episode {
                    submit: ts,
                    end: ts,
                    breakdown: Breakdown::default(),
                    outcome: Outcome::InFlight,
                    payload_bytes: rec.payload_bytes,
                },
                Cat::Queue,
                ts,
            ));
            continue;
        }
        let Some((ep, cat, last)) = cur.as_mut() else {
            continue;
        };
        let delta = ts.saturating_sub(*last);
        match *cat {
            Cat::Queue => ep.breakdown.queue += delta,
            Cat::Install => ep.breakdown.install += delta,
            Cat::Compute => ep.breakdown.compute += delta,
            Cat::Preempt => ep.breakdown.preempt += delta,
        }
        *last = ts;
        ep.end = ts;
        match ph {
            Phase::Queued => *cat = Cat::Queue,
            Phase::Installed => *cat = Cat::Install,
            // Restoring saved state is preemption cost (Fig. 8), not a
            // fresh install.
            Phase::Restored | Phase::Preempted => *cat = Cat::Preempt,
            Phase::Executing => *cat = Cat::Compute,
            Phase::Saved | Phase::SaveRefused | Phase::ForcedReset | Phase::Migrated => {
                *cat = Cat::Queue
            }
            Phase::Complete => {
                ep.outcome = Outcome::Completed;
                out.push(cur.take().unwrap().0);
            }
            Phase::Evicted => {
                ep.outcome = Outcome::Evicted;
                out.push(cur.take().unwrap().0);
            }
            Phase::Submit | Phase::Frozen | Phase::Thawed | Phase::Linked => unreachable!(),
        }
    }
    if let Some((ep, _, _)) = cur {
        out.push(ep);
    }
    out
}

/// Carves the share stall out of an episode's queue time: the span the
/// consumer sat submitted while its linked producer had not yet
/// completed, clamped to the consumer's pre-execute window.
fn apply_share_stall(ep: &mut Episode, first_exec: Option<Cycle>, peer_completes: &[Cycle]) {
    let Some(first_exec) = first_exec else { return };
    // The producer completion the consumer actually waited for: the
    // latest one at or before this episode's end.
    let peer_done = peer_completes
        .iter()
        .rev()
        .find(|&&t| t <= ep.end)
        .copied()
        .unwrap_or(0);
    let stall = peer_done
        .saturating_sub(ep.submit)
        .min(first_exec.saturating_sub(ep.submit))
        .min(ep.breakdown.queue);
    ep.breakdown.share_stall = stall;
    ep.breakdown.queue -= stall;
}

/// First [`Phase::Executing`] timestamp of each episode, aligned with
/// [`episodes`]'s episode order.
fn first_exec_per_episode(rec: &JobRecord) -> Vec<Option<Cycle>> {
    let mut out = Vec::new();
    let mut cur: Option<Option<Cycle>> = None;
    for &(ph, ts) in &rec.phases {
        match ph {
            Phase::Submit => {
                if let Some(v) = cur.take() {
                    out.push(v);
                }
                cur = Some(None);
            }
            Phase::Executing => {
                if let Some(v) = cur.as_mut() {
                    v.get_or_insert(ts);
                }
            }
            Phase::Complete | Phase::Evicted => {
                if let Some(v) = cur.take() {
                    out.push(v);
                }
            }
            _ => {}
        }
    }
    if let Some(v) = cur {
        out.push(v);
    }
    out
}

/// Derives every episode of every job, share stalls applied.
fn all_episodes(recs: &BTreeMap<JobId, JobRecord>) -> BTreeMap<JobId, Vec<Episode>> {
    let mut out = BTreeMap::new();
    for (&job, rec) in recs {
        let mut eps = episodes(rec);
        if let Some(peer) = rec.peer {
            if let Some(peer_rec) = recs.get(&peer) {
                let peer_completes: Vec<Cycle> = peer_rec
                    .phases
                    .iter()
                    .filter(|(p, _)| *p == Phase::Complete)
                    .map(|&(_, t)| t)
                    .collect();
                let firsts = first_exec_per_episode(rec);
                for (ep, first) in eps.iter_mut().zip(firsts) {
                    apply_share_stall(ep, first, &peer_completes);
                }
            }
        }
        out.insert(job, eps);
    }
    out
}

/// Publishes every *finished* (completed or evicted) episode not yet
/// published into the metrics plane: breakdown and end-to-end histograms
/// labelled by vaccel, plus completed-job and payload counters. Called
/// once per report; idempotent per episode, so counters stay monotone.
pub fn publish_metrics() {
    PLANE.with(|p| {
        let mut p = p.borrow_mut();
        let eps_by_job = all_episodes(&p.recs);
        for (job, eps) in eps_by_job {
            let rec = p.recs.get_mut(&job).expect("derived from this map");
            let label = rec.vaccel;
            let dev = rec.device;
            let mut published = rec.published;
            for ep in eps.iter().skip(rec.published) {
                if ep.outcome == Outcome::InFlight {
                    break;
                }
                published += 1;
                metrics::observe_at(metrics::SLO_QUEUE_CYCLES, dev, label, ep.breakdown.queue);
                metrics::observe_at(metrics::SLO_INSTALL_CYCLES, dev, label, ep.breakdown.install);
                metrics::observe_at(metrics::SLO_COMPUTE_CYCLES, dev, label, ep.breakdown.compute);
                metrics::observe_at(metrics::SLO_PREEMPT_CYCLES, dev, label, ep.breakdown.preempt);
                metrics::observe_at(
                    metrics::SLO_SHARE_STALL_CYCLES,
                    dev,
                    label,
                    ep.breakdown.share_stall,
                );
                if ep.outcome == Outcome::Completed {
                    metrics::observe_at(metrics::SLO_E2E_CYCLES, dev, label, ep.e2e());
                    metrics::inc_at(metrics::SLO_JOBS_COMPLETED, dev, label, 1);
                    metrics::inc_at(metrics::SLO_PAYLOAD_BYTES, dev, label, ep.payload_bytes);
                }
            }
            rec.published = published;
        }
    });
}

/// Derives the per-tenant SLO summaries, sorted by tenant name.
pub fn tenant_summaries() -> Vec<TenantSlo> {
    PLANE.with(|p| {
        let p = p.borrow();
        let eps_by_job = all_episodes(&p.recs);
        #[derive(Default)]
        struct Acc {
            submitted: u64,
            completed: u64,
            evicted: u64,
            in_flight: u64,
            payload: u64,
            first_submit: Option<Cycle>,
            last_complete: Option<Cycle>,
            e2e: Vec<u64>,
            queue: Vec<u64>,
            install: Vec<u64>,
            compute: Vec<u64>,
            preempt: Vec<u64>,
            stall: Vec<u64>,
        }
        let mut by_tenant: BTreeMap<String, Acc> = BTreeMap::new();
        for (job, eps) in &eps_by_job {
            let rec = &p.recs[job];
            let acc = by_tenant.entry(rec.tenant.clone()).or_default();
            for ep in eps {
                acc.submitted += 1;
                acc.queue.push(ep.breakdown.queue);
                acc.install.push(ep.breakdown.install);
                acc.compute.push(ep.breakdown.compute);
                acc.preempt.push(ep.breakdown.preempt);
                acc.stall.push(ep.breakdown.share_stall);
                match ep.outcome {
                    Outcome::Completed => {
                        acc.completed += 1;
                        acc.payload += ep.payload_bytes;
                        acc.e2e.push(ep.e2e());
                        acc.first_submit =
                            Some(acc.first_submit.map_or(ep.submit, |f| f.min(ep.submit)));
                        acc.last_complete =
                            Some(acc.last_complete.map_or(ep.end, |l| l.max(ep.end)));
                    }
                    Outcome::Evicted => acc.evicted += 1,
                    Outcome::InFlight => acc.in_flight += 1,
                }
            }
        }
        by_tenant
            .into_iter()
            .map(|(tenant, mut acc)| {
                let span = match (acc.first_submit, acc.last_complete) {
                    (Some(f), Some(l)) => l.saturating_sub(f),
                    _ => 0,
                };
                let goodput = if span > 0 {
                    acc.payload as f64 * crate::time::FABRIC_HZ as f64 / span as f64
                } else {
                    0.0
                };
                TenantSlo {
                    tenant,
                    submitted: acc.submitted,
                    completed: acc.completed,
                    evicted: acc.evicted,
                    in_flight: acc.in_flight,
                    payload_bytes: acc.payload,
                    goodput_bytes_per_sec: goodput,
                    e2e: Dist::from_samples(&mut acc.e2e),
                    queue: Dist::from_samples(&mut acc.queue),
                    install: Dist::from_samples(&mut acc.install),
                    compute: Dist::from_samples(&mut acc.compute),
                    preempt: Dist::from_samples(&mut acc.preempt),
                    share_stall: Dist::from_samples(&mut acc.stall),
                }
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each #[test] runs on its own thread, so the thread-local plane is
    // naturally isolated between tests.

    #[test]
    fn disabled_journal_stays_empty() {
        set_enabled(false);
        submit(1, "t", 0, 0, 4096, 10);
        phase(1, Phase::Executing, 20);
        assert_eq!(job_count(), 0);
    }

    #[test]
    fn breakdown_attributes_every_cycle() {
        set_enabled(true);
        reset();
        submit(7, "t", 2, 0, 1 << 21, 100);
        phase(7, Phase::Installed, 150); // 50 queue
        phase(7, Phase::Executing, 180); // 30 install
        phase(7, Phase::Preempted, 300); // 120 compute
        phase(7, Phase::Saved, 340); //  40 preempt
        phase(7, Phase::Restored, 500); // 160 queue
        phase(7, Phase::Executing, 520); //  20 preempt (restore)
        phase(7, Phase::Complete, 700); // 180 compute
        let recs = export();
        assert_eq!(recs.len(), 1);
        let eps = episodes(&recs[0]);
        assert_eq!(eps.len(), 1);
        let ep = &eps[0];
        assert_eq!(ep.outcome, Outcome::Completed);
        assert_eq!(ep.breakdown.queue, 50 + 160);
        assert_eq!(ep.breakdown.install, 30);
        assert_eq!(ep.breakdown.compute, 120 + 180);
        assert_eq!(ep.breakdown.preempt, 40 + 20);
        assert_eq!(ep.e2e(), 600);
        let total = ep.breakdown.queue + ep.breakdown.install + ep.breakdown.compute
            + ep.breakdown.preempt;
        assert_eq!(total, ep.e2e(), "every cycle attributed");
    }

    #[test]
    fn frozen_thawed_are_transparent() {
        set_enabled(true);
        reset();
        for (job, with_lu) in [(1u64, false), (2u64, true)] {
            submit(job, "t", 0, 0, 0, 100);
            phase(job, Phase::Installed, 150);
            phase(job, Phase::Executing, 180);
            if with_lu {
                phase(job, Phase::Frozen, 200);
                phase(job, Phase::Thawed, 200);
            }
            phase(job, Phase::Complete, 700);
        }
        let recs = export();
        let a = episodes(&recs[0]);
        let b = episodes(&recs[1]);
        assert_eq!(a, b, "live-update phases must not change the derivation");
    }

    #[test]
    fn in_flight_horizon_ignores_frozen() {
        set_enabled(true);
        reset();
        submit(1, "t", 0, 0, 0, 100);
        phase(1, Phase::Executing, 200);
        phase(1, Phase::Frozen, 900);
        phase(1, Phase::Thawed, 900);
        let eps = episodes(&export()[0]);
        assert_eq!(eps.len(), 1);
        assert_eq!(eps[0].outcome, Outcome::InFlight);
        assert_eq!(eps[0].end, 200, "freeze must not extend the charge horizon");
    }

    #[test]
    fn share_stall_carved_out_of_queue() {
        set_enabled(true);
        reset();
        // Producer completes at t=400 while the consumer sits queued.
        submit(10, "producer", 0, 0, 0, 50);
        phase(10, Phase::Executing, 60);
        phase(10, Phase::Complete, 400);
        submit(20, "consumer", 1, 0, 0, 100);
        link(20, 10, 110);
        phase(20, Phase::Installed, 500);
        phase(20, Phase::Executing, 510);
        phase(20, Phase::Complete, 900);
        let sums = tenant_summaries();
        let consumer = sums.iter().find(|t| t.tenant == "consumer").unwrap();
        // Queued 100→500 (400 cycles); the producer was still producing
        // for 300 of them.
        assert_eq!(consumer.share_stall.max, 300);
        assert_eq!(consumer.queue.max, 100);
    }

    #[test]
    fn chunk_merge_fills_stub_metadata_in_order() {
        set_enabled(true);
        reset();
        submit(5, "tenant-a", 1, 0, 4096, 100);
        // Worker thread sees only the phases, not the submit metadata.
        let chunk = std::thread::spawn(|| {
            set_enabled(true);
            phase(5, Phase::Installed, 150);
            phase(5, Phase::Executing, 160);
            take_chunk()
        })
        .join()
        .expect("worker");
        absorb_chunk(chunk);
        phase(5, Phase::Complete, 400);
        let recs = export();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].tenant, "tenant-a");
        let names: Vec<&str> = recs[0].phases.iter().map(|(p, _)| p.name()).collect();
        assert_eq!(
            names,
            ["submit", "queued", "installed", "executing", "complete"]
        );
    }

    #[test]
    fn reused_vaccel_yields_two_episodes() {
        set_enabled(true);
        reset();
        for (base, job) in [(100u64, 1u64), (1000, 1)] {
            submit(job, "t", 0, 0, 64, base);
            phase(job, Phase::Executing, base + 10);
            phase(job, Phase::Complete, base + 50);
        }
        let eps = episodes(&export()[0]);
        assert_eq!(eps.len(), 2);
        assert!(eps.iter().all(|e| e.outcome == Outcome::Completed));
        let sums = tenant_summaries();
        assert_eq!(sums[0].completed, 2);
    }

    #[test]
    fn dist_nearest_rank() {
        let mut samples: Vec<u64> = (1..=100).collect();
        let d = Dist::from_samples(&mut samples);
        assert_eq!(d.p50, 50);
        assert_eq!(d.p95, 95);
        assert_eq!(d.p99, 99);
        assert_eq!(d.max, 100);
        assert_eq!(d.count, 100);
    }
}
