//! Deterministic pseudo-random number generators.
//!
//! The simulator never reads OS entropy: every stochastic decision (random
//! DMA addresses, graph topology, arbitration jitter) flows from an explicit
//! seed so that each experiment is exactly reproducible. Two generators are
//! provided:
//!
//! * [`SplitMix64`] — a tiny, fast generator mainly used to expand a single
//!   `u64` seed into the larger state of other generators.
//! * [`Xoshiro256`] — xoshiro256\*\*, the workhorse generator used by
//!   workload generators and accelerators.

/// SplitMix64 generator (Steele, Lea & Flood).
///
/// Primarily used to seed [`Xoshiro256`], but also handy when a component
/// needs a cheap stateless stream derived from an address or an index.
///
/// # Examples
///
/// ```
/// use optimus_sim::rng::SplitMix64;
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a raw 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Hashes a single value through one SplitMix64 round.
    ///
    /// This is a stateless convenience used for address hashing; identical
    /// inputs always produce identical outputs.
    pub fn mix(value: u64) -> u64 {
        SplitMix64::new(value).next_u64()
    }
}

/// Derives the seed of independent stream `stream` from a base seed.
///
/// This is SplitMix64's canonical stream-splitting construction: the
/// result equals the `stream`-th output of `SplitMix64::new(base)` (the
/// state gamma-steps once per stream index and the full output
/// permutation is applied), so the derived seeds are as well mixed as the
/// generator's own output sequence. Use this instead of additive schemes
/// like `base + k * 1000 + 1`, whose streams collide whenever two
/// (base, k) pairs happen to sum alike.
///
/// # Examples
///
/// ```
/// use optimus_sim::rng::derive_seed;
/// // The old additive derivations collide; the mix does not.
/// assert_eq!(1 + 1 * 1000 + 1, 1001 + 0 * 1000 + 1);
/// assert_ne!(derive_seed(1, 1), derive_seed(1001, 0));
/// ```
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    SplitMix64::new(base.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream))).next_u64()
}

/// xoshiro256\*\* generator (Blackman & Vigna).
///
/// The default generator for workloads and accelerator decision logic. It is
/// seeded through [`SplitMix64`] so that any `u64` produces a well-mixed
/// 256-bit state.
///
/// # Examples
///
/// ```
/// use optimus_sim::rng::Xoshiro256;
/// let mut rng = Xoshiro256::seed_from(1234);
/// let roll = rng.gen_range(0..6);
/// assert!(roll < 6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator by expanding `seed` through SplitMix64.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // A theoretically possible (but practically unreachable) all-zero
        // state would make the generator emit only zeros.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns the next 32-bit output.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniformly distributed value in `range`.
    ///
    /// Uses Lemire's multiply-shift rejection method, so the distribution is
    /// exactly uniform over the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: core::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range requires a non-empty range");
        let span = range.end - range.start;
        // Lemire rejection sampling.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(span as u128);
        let mut low = m as u64;
        if low < span {
            let threshold = span.wrapping_neg() % span;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(span as u128);
                low = m as u64;
            }
        }
        range.start + (m >> 64) as u64
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.gen_f64() < p
    }

    /// Fills `buf` with pseudo-random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    /// Snapshots the raw 256-bit state (for accelerator preemption).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Reconstructs a generator from a snapshot taken with
    /// [`state`](Self::state).
    pub fn from_state(s: [u64; 4]) -> Self {
        Self { s }
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..(i as u64 + 1)) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 0 from the public-domain SplitMix64
        // reference implementation.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(rng.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn xoshiro_is_deterministic() {
        let mut a = Xoshiro256::seed_from(99);
        let mut b = Xoshiro256::seed_from(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256::seed_from(1);
        let mut b = Xoshiro256::seed_from(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Xoshiro256::seed_from(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..17);
            assert!((10..17).contains(&v));
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = Xoshiro256::seed_from(4);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn gen_range_rejects_empty_range() {
        Xoshiro256::seed_from(0).gen_range(5..5);
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = Xoshiro256::seed_from(5);
        for _ in 0..10_000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_f64_mean_is_roughly_half() {
        let mut rng = Xoshiro256::seed_from(6);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = Xoshiro256::seed_from(7);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        // Overwhelmingly unlikely that 13 random bytes are all zero.
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256::seed_from(8);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn state_snapshot_round_trips() {
        let mut a = Xoshiro256::seed_from(77);
        a.next_u64();
        let snap = a.state();
        let stream_a: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let mut b = Xoshiro256::from_state(snap);
        let stream_b: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(stream_a, stream_b);
    }

    #[test]
    fn mix_is_stateless_and_stable() {
        assert_eq!(SplitMix64::mix(42), SplitMix64::mix(42));
        assert_ne!(SplitMix64::mix(42), SplitMix64::mix(43));
    }

    #[test]
    fn derive_seed_is_the_streamth_splitmix_output() {
        let mut sm = SplitMix64::new(0xDEAD_BEEF);
        for stream in 0..16 {
            assert_eq!(derive_seed(0xDEAD_BEEF, stream), sm.next_u64());
        }
    }

    #[test]
    fn derive_seed_avoids_additive_collisions() {
        // The bench runner's old derivations, seed + slot*1000 + 1 and
        // 100 + j, collide across experiments; the mixed streams must not.
        let mut seen = std::collections::HashSet::new();
        for base in [1u64, 7, 42, 100, 1001] {
            for stream in 0..64 {
                assert!(seen.insert(derive_seed(base, stream)), "collision at ({base}, {stream})");
            }
        }
    }
}
