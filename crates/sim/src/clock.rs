//! The event-driven platform clock.
//!
//! Every cycle-stepped platform in the workspace (the composed FPGA
//! device, the host-centric DMA-engine baseline) advances the same way:
//! execute one cycle at a time, except that when event-horizon
//! fast-forwarding is enabled and the machine is provably idle until some
//! future cycle, the clock jumps straight to that cycle. [`PlatformClock`]
//! captures that contract once, so the fast-forward kernel — the part
//! whose correctness argument is subtle — exists in exactly one place and
//! every platform shares it.
//!
//! The contract mirrors the `next_event` protocol documented on
//! `FpgaDevice::next_event` in `optimus-fabric`: a cycle may be skipped
//! only if stepping it is provably a pure no-op, and every implementation
//! must be conservative (report `Some(now)` whenever in doubt), which
//! makes fast-forwarding bit-exact by construction.

use crate::time::Cycle;

/// A cycle-stepped machine that can report when its next observable
/// event occurs, enabling bit-exact event-horizon fast-forwarding.
pub trait PlatformClock {
    /// The machine's current cycle.
    fn now(&self) -> Cycle;

    /// Earliest future cycle at which [`step_cycle`](Self::step_cycle)
    /// can do anything, or `None` if the machine is quiescent until
    /// externally poked. Must be conservative: returning `Some(t)` with
    /// `t > now` asserts every step before `t` is a pure no-op.
    fn next_event(&self) -> Option<Cycle>;

    /// Executes exactly one cycle.
    fn step_cycle(&mut self);

    /// Moves the clock to `t` without executing the skipped cycles.
    /// Callers only invoke this for gaps [`next_event`](Self::next_event)
    /// declared dead.
    fn skip_to(&mut self, t: Cycle);

    /// Whether event-horizon fast-forwarding is active (the
    /// `OPTIMUS_NO_FASTFWD` escape hatch turns it off).
    fn fast_forward(&self) -> bool;

    /// Executes exactly `k` consecutive cycles without re-scanning the
    /// event horizon between them. The default simply loops
    /// [`step_cycle`](Self::step_cycle); implementations may override to
    /// hoist per-step overhead (mode dispatch, thread-local reads) out of
    /// the loop, but must remain step-for-step identical to the default.
    fn step_many(&mut self, k: Cycle) {
        for _ in 0..k {
            self.step_cycle();
        }
    }

    /// Advances toward `end`: skips directly to the next event when
    /// fast-forwarding is on and the machine is provably idle, otherwise
    /// executes one cycle. Never moves past `end`.
    fn advance_toward(&mut self, end: Cycle) {
        self.advance_toward_batched(end, 1);
    }

    /// Batched [`advance_toward`](Self::advance_toward): identical
    /// skip-to-horizon behavior, but when the machine is busy *right now*
    /// it executes up to `batch` cycles in one dispatch instead of one.
    ///
    /// # Why batching is bit-exact
    ///
    /// [`next_event`](Self::next_event)'s contract makes every skippable
    /// cycle a pure no-op when *stepped*; its corollary is that stepping a
    /// cycle fast-forward could have skipped changes nothing. A burst
    /// therefore executes exactly the state transitions the per-cycle
    /// schedule would — event cycles do their work, dead cycles in between
    /// are no-ops — and only the number of horizon scans changes. Only
    /// callers with no per-cycle observation (a plain `run(cycles)` loop)
    /// may pass `batch > 1`: a caller polling state between calls (e.g. a
    /// blocking MMIO read) would observe mid-burst cycles late.
    fn advance_toward_batched(&mut self, end: Cycle, batch: Cycle) {
        if self.fast_forward() {
            match self.next_event() {
                None => {
                    self.skip_to(end);
                    return;
                }
                Some(t) if t > self.now() => {
                    self.skip_to(t.min(end));
                    return;
                }
                _ => {}
            }
            self.step_many(batch.min(end - self.now()).max(1));
        } else {
            self.step_cycle();
        }
    }

    /// [`advance_toward_batched`](Self::advance_toward_batched) with an
    /// *adaptive* burst the caller threads through its run loop: the
    /// burst doubles while the machine stays busy across consecutive
    /// dispatches (up to `cap`) and collapses back to 1 whenever the
    /// clock skips. Throughput-bound stretches amortize the horizon scan
    /// over `cap` cycles; latency-bound workloads — short busy flurries
    /// separated by long dead gaps — never over-step the flurry by more
    /// than it was long, keeping the wasted no-op steps proportional to
    /// the useful ones. Bit-exactness is inherited: only the burst
    /// length differs, and every burst cycle is either an event cycle or
    /// a no-op (see `advance_toward_batched`).
    fn advance_toward_adaptive(&mut self, end: Cycle, burst: &mut Cycle, cap: Cycle) {
        if self.fast_forward() {
            match self.next_event() {
                None => {
                    self.skip_to(end);
                    return;
                }
                Some(t) if t > self.now() => {
                    self.skip_to(t.min(end));
                    *burst = 1;
                    return;
                }
                _ => {}
            }
            self.step_many((*burst).min(end - self.now()).max(1));
            *burst = burst.saturating_mul(2).min(cap.max(1));
        } else {
            self.step_cycle();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A machine that only has something to do every `period` cycles.
    struct Strober {
        now: Cycle,
        period: Cycle,
        work: u64,
        fastfwd: bool,
    }

    impl PlatformClock for Strober {
        fn now(&self) -> Cycle {
            self.now
        }
        fn next_event(&self) -> Option<Cycle> {
            Some(self.now.next_multiple_of(self.period))
        }
        fn step_cycle(&mut self) {
            if self.now % self.period == 0 {
                self.work += 1;
            }
            self.now += 1;
        }
        fn skip_to(&mut self, t: Cycle) {
            self.now = t;
        }
        fn fast_forward(&self) -> bool {
            self.fastfwd
        }
    }

    fn run(m: &mut Strober, cycles: Cycle) {
        let end = m.now + cycles;
        while m.now < end {
            m.advance_toward(end);
        }
    }

    #[test]
    fn fast_forward_is_bit_exact_and_bounded_by_end() {
        let mut slow = Strober { now: 0, period: 97, work: 0, fastfwd: false };
        let mut fast = Strober { now: 0, period: 97, work: 0, fastfwd: true };
        run(&mut slow, 10_000);
        run(&mut fast, 10_000);
        assert_eq!(slow.now, fast.now);
        assert_eq!(slow.work, fast.work);
        assert_eq!(fast.now, 10_000);
    }

    #[test]
    fn quiescent_machine_skips_to_end() {
        struct Idle(Cycle);
        impl PlatformClock for Idle {
            fn now(&self) -> Cycle {
                self.0
            }
            fn next_event(&self) -> Option<Cycle> {
                None
            }
            fn step_cycle(&mut self) {
                panic!("stepped a quiescent machine");
            }
            fn skip_to(&mut self, t: Cycle) {
                self.0 = t;
            }
            fn fast_forward(&self) -> bool {
                true
            }
        }
        let mut m = Idle(5);
        m.advance_toward(1_000);
        assert_eq!(m.now(), 1_000);
    }
}
