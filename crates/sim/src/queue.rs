//! Latency-carrying FIFOs.
//!
//! Hardware links in the simulator — multiplexer-tree hops, UPI/PCIe
//! channels, the IOMMU pipeline — are modeled as FIFOs whose entries become
//! visible only after a *ready time*. [`TimedQueue`] preserves arrival order
//! (it is a pipeline, not a reorder buffer) while delaying visibility, which
//! is exactly how a fixed-latency pipelined link behaves.

use crate::time::Cycle;
use std::collections::VecDeque;

/// A FIFO whose entries become poppable only once the clock reaches their
/// ready time.
///
/// Entries must be pushed with monotonically non-decreasing ready times
/// (enforced by clamping), matching a physical pipeline where a packet can
/// never overtake its predecessor.
///
/// # Examples
///
/// ```
/// use optimus_sim::queue::TimedQueue;
///
/// let mut q = TimedQueue::new();
/// q.push("pkt", 10);
/// assert_eq!(q.pop_ready(9), None);
/// assert_eq!(q.pop_ready(10), Some("pkt"));
/// ```
#[derive(Debug, Clone)]
pub struct TimedQueue<T> {
    items: VecDeque<(Cycle, T)>,
    last_ready: Cycle,
}

impl<T> TimedQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            items: VecDeque::new(),
            last_ready: 0,
        }
    }

    /// Pushes `item`, visible from cycle `ready_at` onward.
    ///
    /// If `ready_at` precedes the ready time of the queue tail, it is clamped
    /// so the FIFO ordering (no overtaking) is preserved.
    pub fn push(&mut self, item: T, ready_at: Cycle) {
        let ready = ready_at.max(self.last_ready);
        self.last_ready = ready;
        self.items.push_back((ready, item));
    }

    /// Pops the head if its ready time has been reached.
    pub fn pop_ready(&mut self, now: Cycle) -> Option<T> {
        match self.items.front() {
            Some(&(ready, _)) if ready <= now => self.items.pop_front().map(|(_, t)| t),
            _ => None,
        }
    }

    /// Ready time of the head entry, if any.
    ///
    /// Because pushes clamp ready times monotonically (no overtaking), the
    /// head's ready time is the earliest cycle at which *any* entry becomes
    /// poppable — i.e. the queue's next event horizon. `None` means the
    /// queue is empty and will stay silent until something is pushed.
    ///
    /// # Examples
    ///
    /// ```
    /// use optimus_sim::queue::TimedQueue;
    ///
    /// let mut q = TimedQueue::new();
    /// assert_eq!(q.next_ready(), None);
    /// q.push("pkt", 10);
    /// q.push("later", 3); // clamped to 10: cannot overtake
    /// assert_eq!(q.next_ready(), Some(10));
    /// assert_eq!(q.pop_ready(10), Some("pkt"));
    /// assert_eq!(q.next_ready(), Some(10));
    /// ```
    pub fn next_ready(&self) -> Option<Cycle> {
        self.items.front().map(|&(ready, _)| ready)
    }

    /// Peeks at the head if its ready time has been reached.
    pub fn peek_ready(&self, now: Cycle) -> Option<&T> {
        match self.items.front() {
            Some(&(ready, ref item)) if ready <= now => Some(item),
            _ => None,
        }
    }

    /// Number of queued entries (ready or not).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` if no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Drops all entries and resets the monotonic ready-time clamp.
    ///
    /// Used when an accelerator is reset: in-flight packets on its private
    /// links are discarded.
    pub fn clear(&mut self) {
        self.items.clear();
        self.last_ready = 0;
    }

    /// Iterates over queued entries in FIFO order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter().map(|(_, t)| t)
    }
}

impl<T> Default for TimedQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_ready_time() {
        let mut q = TimedQueue::new();
        q.push(1, 5);
        assert!(q.pop_ready(4).is_none());
        assert_eq!(q.pop_ready(5), Some(1));
        assert!(q.pop_ready(100).is_none());
    }

    #[test]
    fn preserves_fifo_order() {
        let mut q = TimedQueue::new();
        q.push("a", 3);
        q.push("b", 3);
        q.push("c", 4);
        assert_eq!(q.pop_ready(10), Some("a"));
        assert_eq!(q.pop_ready(10), Some("b"));
        assert_eq!(q.pop_ready(10), Some("c"));
    }

    #[test]
    fn no_overtaking_clamps_ready_time() {
        let mut q = TimedQueue::new();
        q.push("slow", 100);
        q.push("fast", 10); // clamped to 100
        assert!(q.pop_ready(99).is_none());
        assert_eq!(q.pop_ready(100), Some("slow"));
        assert_eq!(q.pop_ready(100), Some("fast"));
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = TimedQueue::new();
        q.push(7, 0);
        assert_eq!(q.peek_ready(0), Some(&7));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_ready(0), Some(7));
        assert!(q.is_empty());
    }

    #[test]
    fn clear_resets_clamp() {
        let mut q = TimedQueue::new();
        q.push(1, 1000);
        q.clear();
        q.push(2, 1);
        assert_eq!(q.pop_ready(1), Some(2));
    }

    #[test]
    fn next_ready_tracks_head() {
        let mut q = TimedQueue::new();
        assert_eq!(q.next_ready(), None);
        q.push("a", 7);
        q.push("b", 9);
        assert_eq!(q.next_ready(), Some(7));
        assert_eq!(q.pop_ready(7), Some("a"));
        assert_eq!(q.next_ready(), Some(9));
        assert_eq!(q.pop_ready(9), Some("b"));
        assert_eq!(q.next_ready(), None);
    }

    #[test]
    fn next_ready_respects_no_overtaking_clamp() {
        let mut q = TimedQueue::new();
        q.push("slow", 50);
        assert_eq!(q.pop_ready(50), Some("slow"));
        // The clamp outlives the pop: a later push cannot rewind the head.
        q.push("fast", 1);
        assert_eq!(q.next_ready(), Some(50));
    }

    #[test]
    fn next_ready_is_never_poppable_early() {
        let mut q = TimedQueue::new();
        q.push(1, 12);
        let horizon = q.next_ready().unwrap();
        assert!(q.pop_ready(horizon - 1).is_none());
        assert_eq!(q.pop_ready(horizon), Some(1));
    }

    #[test]
    fn iter_in_order() {
        let mut q = TimedQueue::new();
        for i in 0..5 {
            q.push(i, i as u64);
        }
        let v: Vec<_> = q.iter().copied().collect();
        assert_eq!(v, [0, 1, 2, 3, 4]);
    }
}
