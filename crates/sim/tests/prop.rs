//! Property-based tests of the simulation kernel's invariants.

use optimus_sim::perm::FeistelPermutation;
use optimus_sim::queue::TimedQueue;
use optimus_sim::rng::Xoshiro256;
use proptest::prelude::*;

proptest! {
    /// apply/invert are mutually inverse over the whole domain.
    #[test]
    fn permutation_round_trips(n in 1u64..50_000, seed: u64, probe in 0u64..50_000) {
        let p = FeistelPermutation::new(n, seed);
        let i = probe % n;
        let v = p.apply(i);
        prop_assert!(v < n);
        prop_assert_eq!(p.invert(v), i);
    }

    /// The permutation is injective on any sampled subset.
    #[test]
    fn permutation_is_injective(n in 2u64..5_000, seed: u64) {
        let p = FeistelPermutation::new(n, seed);
        let mut seen = std::collections::HashSet::new();
        for i in (0..n).step_by((n as usize / 64).max(1)) {
            prop_assert!(seen.insert(p.apply(i)));
        }
    }

    /// gen_range never leaves its bounds, for arbitrary ranges.
    #[test]
    fn gen_range_in_bounds(seed: u64, lo in 0u64..1 << 40, span in 1u64..1 << 20) {
        let mut rng = Xoshiro256::seed_from(seed);
        for _ in 0..64 {
            let v = rng.gen_range(lo..lo + span);
            prop_assert!((lo..lo + span).contains(&v));
        }
    }

    /// TimedQueue is FIFO regardless of the (possibly decreasing) ready
    /// times pushed.
    #[test]
    fn timed_queue_is_fifo(ready_times in proptest::collection::vec(0u64..1000, 1..50)) {
        let mut q = TimedQueue::new();
        for (i, &r) in ready_times.iter().enumerate() {
            q.push(i, r);
        }
        let mut out = Vec::new();
        for now in 0..4000u64 {
            while let Some(v) = q.pop_ready(now) {
                out.push(v);
            }
        }
        prop_assert_eq!(out, (0..ready_times.len()).collect::<Vec<_>>());
    }

    /// Entries never surface before their ready time.
    #[test]
    fn timed_queue_respects_time(ready in 1u64..10_000) {
        let mut q = TimedQueue::new();
        q.push((), ready);
        prop_assert!(q.pop_ready(ready - 1).is_none());
        prop_assert!(q.pop_ready(ready).is_some());
    }
}
