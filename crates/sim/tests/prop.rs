//! Property-based tests of the simulation kernel's invariants, on the
//! in-tree `optimus-testkit` harness (replay failures with
//! `OPTIMUS_PROP_SEED=<printed seed>`).

use optimus_sim::perm::FeistelPermutation;
use optimus_sim::queue::TimedQueue;
use optimus_sim::rng::Xoshiro256;
use optimus_sim::stats::LatencyStats;
use optimus_testkit::gens;
use optimus_testkit::runner::check;
use optimus_testkit::{prop_assert, prop_assert_eq};

/// apply/invert are mutually inverse over the whole domain.
#[test]
fn permutation_round_trips() {
    let gen = gens::zip3(
        gens::u64_in(1..50_000),
        gens::u64_any(),
        gens::u64_in(0..50_000),
    );
    check("permutation_round_trips", &gen, |&(n, seed, probe)| {
        let p = FeistelPermutation::new(n, seed);
        let i = probe % n;
        let v = p.apply(i);
        prop_assert!(v < n);
        prop_assert_eq!(p.invert(v), i);
        Ok(())
    });
}

/// The permutation is injective on any sampled subset.
#[test]
fn permutation_is_injective() {
    let gen = gens::zip2(gens::u64_in(2..5_000), gens::u64_any());
    check("permutation_is_injective", &gen, |&(n, seed)| {
        let p = FeistelPermutation::new(n, seed);
        let mut seen = std::collections::HashSet::new();
        for i in (0..n).step_by((n as usize / 64).max(1)) {
            prop_assert!(seen.insert(p.apply(i)));
        }
        Ok(())
    });
}

/// gen_range never leaves its bounds, for arbitrary ranges.
#[test]
fn gen_range_in_bounds() {
    let gen = gens::zip3(
        gens::u64_any(),
        gens::u64_in(0..1 << 40),
        gens::u64_in(1..1 << 20),
    );
    check("gen_range_in_bounds", &gen, |&(seed, lo, span)| {
        let mut rng = Xoshiro256::seed_from(seed);
        for _ in 0..64 {
            let v = rng.gen_range(lo..lo + span);
            prop_assert!((lo..lo + span).contains(&v));
        }
        Ok(())
    });
}

/// TimedQueue is FIFO regardless of the (possibly decreasing) ready times
/// pushed.
#[test]
fn timed_queue_is_fifo() {
    let gen = gens::vec_of(gens::u64_in(0..1000), 1..50);
    check("timed_queue_is_fifo", &gen, |ready_times: &Vec<u64>| {
        let mut q = TimedQueue::new();
        for (i, &r) in ready_times.iter().enumerate() {
            q.push(i, r);
        }
        let mut out = Vec::new();
        for now in 0..4000u64 {
            while let Some(v) = q.pop_ready(now) {
                out.push(v);
            }
        }
        prop_assert_eq!(out, (0..ready_times.len()).collect::<Vec<_>>());
        Ok(())
    });
}

/// Merging two accumulators is equivalent to recording the concatenated
/// sample stream into one, for every statistic (including percentiles
/// and subsequent chronological discards).
#[test]
fn latency_merge_equals_concatenation() {
    let gen = gens::zip2(
        gens::vec_of(gens::u64_in(0..1_000_000), 0..60),
        gens::vec_of(gens::u64_in(0..1_000_000), 0..60),
    );
    check(
        "latency_merge_equals_concatenation",
        &gen,
        |(a, b): &(Vec<u64>, Vec<u64>)| {
            let mut left = LatencyStats::new();
            a.iter().for_each(|&v| left.record(v));
            let mut right = LatencyStats::new();
            b.iter().for_each(|&v| right.record(v));
            let mut concat = LatencyStats::new();
            a.iter().chain(b.iter()).for_each(|&v| concat.record(v));
            left.merge(&right);
            prop_assert_eq!(left.count(), concat.count());
            prop_assert_eq!(left.mean_cycles(), concat.mean_cycles());
            prop_assert_eq!(left.min_cycles(), concat.min_cycles());
            prop_assert_eq!(left.max_cycles(), concat.max_cycles());
            for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
                prop_assert_eq!(left.percentile_cycles(q), concat.percentile_cycles(q));
            }
            // Merge must also preserve chronology: discarding a prefix
            // afterwards removes `a`'s samples first.
            let n = a.len().min(left.count());
            left.discard_prefix(n);
            concat.discard_prefix(n);
            prop_assert_eq!(left.mean_cycles(), concat.mean_cycles());
            Ok(())
        },
    );
}

/// Percentiles are monotone non-decreasing in `q` and bounded by
/// min/max, under the nearest-rank definition.
#[test]
fn latency_percentile_monotone_in_q() {
    let gen = gens::zip2(
        gens::vec_of(gens::u64_in(0..1_000_000), 1..80),
        gens::vec_of(gens::u64_in(0..101), 2..12),
    );
    check(
        "latency_percentile_monotone_in_q",
        &gen,
        |(samples, qs): &(Vec<u64>, Vec<u64>)| {
            let mut s = LatencyStats::new();
            samples.iter().for_each(|&v| s.record(v));
            let mut qs: Vec<f64> = qs.iter().map(|&q| q as f64 / 100.0).collect();
            qs.sort_by(|x, y| x.partial_cmp(y).unwrap());
            let mut prev = s.min_cycles();
            for &q in &qs {
                let p = s.percentile_cycles(q);
                prop_assert!(p >= prev, "p({q}) = {p} < previous {prev}");
                prop_assert!(p >= s.min_cycles() && p <= s.max_cycles());
                prev = p;
            }
            prop_assert_eq!(s.percentile_cycles(0.0), s.min_cycles());
            prop_assert_eq!(s.percentile_cycles(1.0), s.max_cycles());
            Ok(())
        },
    );
}

/// `discard_prefix` removes the *earliest* samples under any
/// interleaving of percentile queries with records and discards
/// (regression property for the in-place-sort bug).
#[test]
fn latency_discard_prefix_chronological_under_queries() {
    // Ops: (op % 4): 0/1 = record, 2 = percentile query, 3 = discard.
    let gen = gens::vec_of(
        gens::zip2(gens::u64_in(0..4), gens::u64_in(0..1_000_000)),
        1..80,
    );
    check(
        "latency_discard_prefix_chronological_under_queries",
        &gen,
        |ops: &Vec<(u64, u64)>| {
            let mut s = LatencyStats::new();
            // Model: the plain chronological sample list.
            let mut model: Vec<u64> = Vec::new();
            for &(op, v) in ops {
                match op {
                    0 | 1 => {
                        s.record(v);
                        model.push(v);
                    }
                    2 => {
                        let q = (v % 101) as f64 / 100.0;
                        let got = s.percentile_cycles(q);
                        // Nearest-rank against the model.
                        let mut sorted = model.clone();
                        sorted.sort_unstable();
                        let expect = if sorted.is_empty() {
                            0
                        } else {
                            let rank = ((sorted.len() as f64 * q).ceil() as usize).max(1);
                            sorted[rank - 1]
                        };
                        prop_assert_eq!(got, expect);
                    }
                    _ => {
                        let n = (v as usize) % (model.len() + 1);
                        s.discard_prefix(n);
                        model.drain(..n);
                    }
                }
                prop_assert_eq!(s.count(), model.len());
                let mean = if model.is_empty() {
                    0.0
                } else {
                    model.iter().sum::<u64>() as f64 / model.len() as f64
                };
                prop_assert_eq!(s.mean_cycles(), mean);
            }
            Ok(())
        },
    );
}

/// Entries never surface before their ready time.
#[test]
fn timed_queue_respects_time() {
    let gen = gens::u64_in(1..10_000);
    check("timed_queue_respects_time", &gen, |&ready| {
        let mut q = TimedQueue::new();
        q.push((), ready);
        prop_assert!(q.pop_ready(ready - 1).is_none());
        prop_assert!(q.pop_ready(ready).is_some());
        Ok(())
    });
}
