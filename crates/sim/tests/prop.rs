//! Property-based tests of the simulation kernel's invariants, on the
//! in-tree `optimus-testkit` harness (replay failures with
//! `OPTIMUS_PROP_SEED=<printed seed>`).

use optimus_sim::perm::FeistelPermutation;
use optimus_sim::queue::TimedQueue;
use optimus_sim::rng::Xoshiro256;
use optimus_testkit::gens;
use optimus_testkit::runner::check;
use optimus_testkit::{prop_assert, prop_assert_eq};

/// apply/invert are mutually inverse over the whole domain.
#[test]
fn permutation_round_trips() {
    let gen = gens::zip3(
        gens::u64_in(1..50_000),
        gens::u64_any(),
        gens::u64_in(0..50_000),
    );
    check("permutation_round_trips", &gen, |&(n, seed, probe)| {
        let p = FeistelPermutation::new(n, seed);
        let i = probe % n;
        let v = p.apply(i);
        prop_assert!(v < n);
        prop_assert_eq!(p.invert(v), i);
        Ok(())
    });
}

/// The permutation is injective on any sampled subset.
#[test]
fn permutation_is_injective() {
    let gen = gens::zip2(gens::u64_in(2..5_000), gens::u64_any());
    check("permutation_is_injective", &gen, |&(n, seed)| {
        let p = FeistelPermutation::new(n, seed);
        let mut seen = std::collections::HashSet::new();
        for i in (0..n).step_by((n as usize / 64).max(1)) {
            prop_assert!(seen.insert(p.apply(i)));
        }
        Ok(())
    });
}

/// gen_range never leaves its bounds, for arbitrary ranges.
#[test]
fn gen_range_in_bounds() {
    let gen = gens::zip3(
        gens::u64_any(),
        gens::u64_in(0..1 << 40),
        gens::u64_in(1..1 << 20),
    );
    check("gen_range_in_bounds", &gen, |&(seed, lo, span)| {
        let mut rng = Xoshiro256::seed_from(seed);
        for _ in 0..64 {
            let v = rng.gen_range(lo..lo + span);
            prop_assert!((lo..lo + span).contains(&v));
        }
        Ok(())
    });
}

/// TimedQueue is FIFO regardless of the (possibly decreasing) ready times
/// pushed.
#[test]
fn timed_queue_is_fifo() {
    let gen = gens::vec_of(gens::u64_in(0..1000), 1..50);
    check("timed_queue_is_fifo", &gen, |ready_times: &Vec<u64>| {
        let mut q = TimedQueue::new();
        for (i, &r) in ready_times.iter().enumerate() {
            q.push(i, r);
        }
        let mut out = Vec::new();
        for now in 0..4000u64 {
            while let Some(v) = q.pop_ready(now) {
                out.push(v);
            }
        }
        prop_assert_eq!(out, (0..ready_times.len()).collect::<Vec<_>>());
        Ok(())
    });
}

/// Entries never surface before their ready time.
#[test]
fn timed_queue_respects_time() {
    let gen = gens::u64_in(1..10_000);
    check("timed_queue_respects_time", &gen, |&ready| {
        let mut q = TimedQueue::new();
        q.push((), ready);
        prop_assert!(q.pop_ready(ready - 1).is_none());
        prop_assert!(q.pop_ready(ready).is_some());
        Ok(())
    });
}
