//! Workload generators for the OPTIMUS benchmarks.
//!
//! Deterministic, seedable inputs for every benchmark: graphs shaped like
//! the paper's SSSP sweep (800 K vertices, 3.2 M–51.2 M edges, scaled),
//! lazily synthesizable linked-list regions (up to 8 GB of working set
//! without 8 GB of host RAM), RS codeword streams with injected errors, and
//! byte/image/sample streams for the remaining kernels.

pub mod graphs;
pub mod linked_list;
pub mod streams;

pub use graphs::fig1_graph;
pub use linked_list::{linked_list_filler, start_of_walk};
