//! Lazily synthesized linked-list regions.
//!
//! The LinkedList benchmark walks a list "distributed randomly in DRAM"
//! over working sets up to 8 GB. The layout is a Feistel pseudo-random
//! permutation over node slots: slot `i` stores a pointer to slot `π(i)`,
//! so any 4 KB frame of the region can be synthesized on first touch —
//! no gigabytes of host RAM required.

use optimus_mem::addr::{Gva, Hpa};
use optimus_mem::host::{FrameFiller, LineFiller};
use optimus_sim::perm::FeistelPermutation;

/// Builds the lazy frame filler for a list of `nodes` 64-byte nodes whose
/// region starts at guest virtual address `region_gva` and is backed
/// contiguously starting at host physical address `region_hpa`.
///
/// Node `i` (at `region_gva + 64·i`) stores the GVA of its successor in
/// its first eight bytes — the pointers are *guest virtual*, exactly what
/// the shared-memory accelerator dereferences.
///
/// The successor function is a single Hamiltonian cycle in random order:
/// the node at slot `π(k)` points at slot `π(k+1 mod n)`, so a walk from
/// any node visits every node exactly once per lap. (Using `π` directly
/// as the successor would decompose the region into random-length cycles,
/// making walk throughput depend on which cycle the start node landed in.)
pub fn linked_list_filler(
    region_gva: Gva,
    region_hpa: Hpa,
    nodes: u64,
    seed: u64,
) -> FrameFiller {
    let line = linked_list_line_filler(region_gva, region_hpa, nodes, seed);
    std::sync::Arc::new(move |frame_hpa: Hpa, frame: &mut [u8; optimus_mem::addr::PAGE_4K as usize]| {
        for (line_idx, chunk) in frame.chunks_exact_mut(64).enumerate() {
            let hpa = Hpa::new(frame_hpa.raw() + line_idx as u64 * 64);
            line(hpa, chunk.try_into().unwrap());
        }
    })
}

/// Line-granular variant of [`linked_list_filler`], for registration via
/// [`HostMemory::add_lazy_region_lines`](optimus_mem::host::HostMemory::add_lazy_region_lines).
///
/// The walk dereferences one random node (= one 64-byte line) per step, so
/// synthesizing a line costs exactly two permutation evaluations — against
/// 128 for the whole-frame path that computes 63 neighbours the walk never
/// looks at before they leave scope.
pub fn linked_list_line_filler(
    region_gva: Gva,
    region_hpa: Hpa,
    nodes: u64,
    seed: u64,
) -> LineFiller {
    assert!(nodes > 0, "a list needs at least one node");
    let perm = FeistelPermutation::new(nodes, seed);
    let base_gva = region_gva.raw();
    let base_hpa = region_hpa.raw();
    std::sync::Arc::new(move |line_hpa: Hpa, line: &mut [u8; 64]| {
        let node = (line_hpa.raw() - base_hpa) / 64;
        if node < nodes {
            let pos = perm.invert(node);
            let next = perm.apply((pos + 1) % nodes);
            line[0..8].copy_from_slice(&(base_gva + next * 64).to_le_bytes());
        }
    })
}

/// The canonical starting node of a walk (node 0's GVA).
pub fn start_of_walk(region_gva: Gva) -> Gva {
    region_gva
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimus_mem::host::HostMemory;

    #[test]
    fn filler_produces_a_valid_permutation_walk() {
        let nodes = 1024u64;
        let gva = Gva::new(0x10_0000);
        let hpa = Hpa::new(0x40_0000);
        let mut mem = HostMemory::new();
        mem.add_lazy_region(hpa, nodes * 64, linked_list_filler(gva, hpa, nodes, 7));
        // Walk in software via the memory image.
        let mut seen = std::collections::HashSet::new();
        let mut cur = gva.raw();
        for _ in 0..nodes {
            let off = cur - gva.raw();
            let line = mem.read_line(Hpa::new(hpa.raw() + off));
            let next = u64::from_le_bytes(line[0..8].try_into().unwrap());
            assert!(next >= gva.raw() && next < gva.raw() + nodes * 64);
            assert_eq!(next % 64, 0);
            seen.insert(next);
            cur = next;
        }
        // The Hamiltonian layout visits every node exactly once per lap.
        assert_eq!(seen.len() as u64, nodes, "not a single cycle");
        // Lazy: no frames materialized by reads.
        assert_eq!(mem.materialized_frames(), 0);
    }

    #[test]
    fn same_seed_same_layout() {
        let gva = Gva::new(0);
        let hpa = Hpa::new(0);
        let f1 = linked_list_filler(gva, hpa, 256, 9);
        let f2 = linked_list_filler(gva, hpa, 256, 9);
        let mut a = [0u8; 4096];
        let mut b = [0u8; 4096];
        f1(Hpa::new(0), &mut a);
        f2(Hpa::new(0), &mut b);
        assert_eq!(a, b);
    }
}
