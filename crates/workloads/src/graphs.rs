//! Graph generation for the SSSP benchmarks.

use optimus_algo::graph::CsrGraph;
use optimus_sim::rng::Xoshiro256;

/// Generates a uniform random directed graph with `vertices` vertices and
/// `edges` edges, weights in `[1, 100)` — the shape of the paper's SSSP
/// inputs (a fixed vertex count with an increasing edge count).
pub fn random_graph(vertices: usize, edges: usize, seed: u64) -> CsrGraph {
    let mut rng = Xoshiro256::seed_from(seed);
    let list: Vec<(u32, u32, u32)> = (0..edges)
        .map(|_| {
            (
                rng.gen_range(0..vertices as u64) as u32,
                rng.gen_range(0..vertices as u64) as u32,
                rng.gen_range(1..100) as u32,
            )
        })
        .collect();
    CsrGraph::from_edges(vertices, &list)
}

/// The Fig. 1 sweep at 1/`scale` of the paper's size: the paper uses 800 K
/// vertices and 3.2 M–51.2 M edges; `fig1_graph(edges_m, scale)` produces
/// `800_000 / scale` vertices and `edges_m · 1e6 / scale` edges.
pub fn fig1_graph(edges_millions: f64, scale: u64, seed: u64) -> CsrGraph {
    let vertices = 800_000 / scale as usize;
    let edges = (edges_millions * 1e6 / scale as f64) as usize;
    random_graph(vertices, edges, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimus_algo::graph::sssp;

    #[test]
    fn random_graph_is_deterministic() {
        let a = random_graph(100, 500, 1);
        let b = random_graph(100, 500, 1);
        assert_eq!(a, b);
        assert_eq!(a.vertices(), 100);
        assert_eq!(a.edges(), 500);
    }

    #[test]
    fn fig1_scaling() {
        let g = fig1_graph(3.2, 100, 0);
        assert_eq!(g.vertices(), 8000);
        assert_eq!(g.edges(), 32_000);
    }

    #[test]
    fn generated_graphs_are_mostly_connected_from_source_zero() {
        let g = random_graph(1000, 8000, 3);
        let dist = sssp(&g, 0);
        let reachable = dist.iter().filter(|&&d| d != u32::MAX).count();
        assert!(reachable > 900, "only {reachable}/1000 reachable");
    }
}
