//! Byte-stream and structured-stream generators.

use optimus_algo::reed_solomon::ReedSolomon;
use optimus_sim::rng::Xoshiro256;

/// A deterministic pseudo-random byte buffer.
pub fn random_bytes(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = Xoshiro256::seed_from(seed);
    let mut out = vec![0u8; len];
    rng.fill_bytes(&mut out);
    out
}

/// A stream of `count` RS(255, 223) codewords (each padded to 256 bytes)
/// with `errors_per_codeword` random symbol corruptions, plus the clean
/// messages for verification.
pub fn rs_codeword_stream(
    count: usize,
    errors_per_codeword: usize,
    seed: u64,
) -> (Vec<u8>, Vec<Vec<u8>>) {
    let codec = ReedSolomon::new(32);
    let mut rng = Xoshiro256::seed_from(seed);
    let mut packed = Vec::with_capacity(count * 256);
    let mut messages = Vec::with_capacity(count);
    for _ in 0..count {
        let mut msg = vec![0u8; 223];
        rng.fill_bytes(&mut msg);
        let mut cw = codec.encode(&msg);
        for _ in 0..errors_per_codeword {
            let pos = rng.gen_range(0..cw.len() as u64) as usize;
            cw[pos] ^= rng.gen_range(1..256) as u8;
        }
        packed.extend_from_slice(&cw);
        packed.push(0);
        messages.push(msg);
    }
    (packed, messages)
}

/// A 64-pixel-wide grayscale test image with smooth structure plus noise,
/// as flat row-major bytes (one cache line per row).
pub fn test_image_rows(rows: usize, seed: u64) -> Vec<u8> {
    let mut rng = Xoshiro256::seed_from(seed);
    let mut out = vec![0u8; rows * 64];
    for (i, px) in out.iter_mut().enumerate() {
        let x = (i % 64) as f64;
        let y = (i / 64) as f64;
        let base = 128.0 + 80.0 * ((x / 9.0).sin() * (y / 7.0).cos());
        *px = (base + rng.gen_range(0..16) as f64) as u8;
    }
    out
}

/// A stream of 16-bit samples (two sinusoids plus noise) packed as
/// little-endian bytes for the FIR benchmark.
pub fn signal_samples(count: usize, seed: u64) -> Vec<u8> {
    let mut rng = Xoshiro256::seed_from(seed);
    let mut out = Vec::with_capacity(count * 2);
    for i in 0..count {
        let t = i as f64;
        let s = 8000.0 * (t * 0.05).sin() + 4000.0 * (t * 0.9).sin()
            + rng.gen_range(0..400) as f64
            - 200.0;
        out.extend_from_slice(&(s as i16).to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_bytes_deterministic() {
        assert_eq!(random_bytes(100, 1), random_bytes(100, 1));
        assert_ne!(random_bytes(100, 1), random_bytes(100, 2));
    }

    #[test]
    fn rs_stream_decodes() {
        let (packed, messages) = rs_codeword_stream(3, 8, 5);
        assert_eq!(packed.len(), 3 * 256);
        let codec = ReedSolomon::new(32);
        for (i, msg) in messages.iter().enumerate() {
            let cw = &packed[i * 256..i * 256 + 255];
            assert_eq!(&codec.decode(cw).unwrap(), msg);
        }
    }

    #[test]
    fn image_rows_sized_correctly() {
        let img = test_image_rows(16, 0);
        assert_eq!(img.len(), 1024);
    }

    #[test]
    fn signal_is_little_endian_pairs() {
        let s = signal_samples(32, 3);
        assert_eq!(s.len(), 64);
    }
}
