//! Property-based tests of the fabric's conservation and isolation
//! invariants, on the in-tree `optimus-testkit` harness (replay failures
//! with `OPTIMUS_PROP_SEED=<printed seed>`).

use optimus_cci::packet::{AccelId, Tag, UpPacket};
use optimus_fabric::auditor::{AuditVerdict, Auditor, OutboundReq};
use optimus_fabric::mux_tree::{MuxTree, TreeConfig};
use optimus_mem::addr::{Gva, Iova};
use optimus_testkit::gens;
use optimus_testkit::runner::check;
use optimus_testkit::{prop_assert, prop_assert_eq};

/// The multiplexer tree neither drops nor duplicates nor reorders any
/// accelerator's packets, for arbitrary injection schedules.
#[test]
fn mux_tree_conserves_packets() {
    let gen = gens::zip2(
        gens::usize_in(2..9),
        gens::vec_of(
            gens::zip2(gens::usize_in(0..8), gens::u64_in(1..5)),
            1..200,
        ),
    );
    check(
        "mux_tree_conserves_packets",
        &gen,
        |(leaves, schedule): &(usize, Vec<(usize, u64)>)| {
            let leaves = *leaves;
            let mut tree = MuxTree::new(TreeConfig { leaves, arity: 2 });
            let mut injected: Vec<Vec<u32>> = vec![Vec::new(); leaves];
            let mut seq = 0u32;
            let mut now = 0u64;
            let mut received: Vec<Vec<u32>> = vec![Vec::new(); leaves];
            for &(accel, gap) in schedule {
                let a = accel % leaves;
                now += gap;
                if tree.can_accept(a) {
                    tree.inject(
                        a,
                        UpPacket::DmaRead {
                            iova: Iova::new(0),
                            src: AccelId(a as u8),
                            tag: Tag(seq),
                        },
                        now,
                    );
                    injected[a].push(seq);
                    seq += 1;
                }
                tree.step(now);
                while let Some(p) = tree.pop_root(now) {
                    if let UpPacket::DmaRead { src, tag, .. } = p {
                        received[src.0 as usize].push(tag.0);
                    }
                }
            }
            // Drain completely.
            for _ in 0..10_000u64 {
                now += 1;
                tree.step(now);
                while let Some(p) = tree.pop_root(now) {
                    if let UpPacket::DmaRead { src, tag, .. } = p {
                        received[src.0 as usize].push(tag.0);
                    }
                }
            }
            // Per-accelerator: exact same tags, in FIFO order.
            for a in 0..leaves {
                prop_assert_eq!(&received[a], &injected[a], "accel {}", a);
            }
            Ok(())
        },
    );
}

/// Auditor translation is exact for any offset/GVA pair, and DMA verdicts
/// accept exactly the matching accelerator ID.
#[test]
fn auditor_translation_and_identity() {
    let gen = gens::zip4(
        gens::u64_any(),
        gens::u64_any(),
        gens::u8_in(0..8),
        gens::u8_in(0..8),
    );
    check(
        "auditor_translation_and_identity",
        &gen,
        |&(offset, gva, id, probe)| {
            let mut a = Auditor::new(AccelId(id), 0x11000 + id as u64 * 0x1000, 0x1000);
            a.set_offset(offset);
            let pkt = a.translate(OutboundReq {
                gva: Gva::new(gva),
                write: None,
                tag: Tag(1),
            });
            match pkt {
                UpPacket::DmaRead { iova, src, .. } => {
                    prop_assert_eq!(iova.raw(), gva.wrapping_add(offset));
                    prop_assert_eq!(src, AccelId(id));
                }
                other => prop_assert!(false, "unexpected {:?}", other),
            }
            let down = optimus_cci::packet::DownPacket::DmaWriteAck {
                dst: AccelId(probe),
                tag: Tag(0),
            };
            let verdict = a.audit(&down);
            if probe == id {
                let delivered = matches!(verdict, AuditVerdict::DeliverDma { .. });
                prop_assert!(delivered);
            } else {
                prop_assert_eq!(verdict, AuditVerdict::NotMine);
            }
            Ok(())
        },
    );
}

/// MMIO range checks: the auditor forwards exactly its own 4 KB page.
#[test]
fn auditor_mmio_window() {
    let gen = gens::zip2(gens::u8_in(0..8), gens::u64_in(0..0x20000));
    check("auditor_mmio_window", &gen, |&(id, addr)| {
        let base = 0x11000 + id as u64 * 0x1000;
        let mut a = Auditor::new(AccelId(id), base, 0x1000);
        let verdict = a.audit(&optimus_cci::packet::DownPacket::MmioWrite { addr, value: 1 });
        let inside = addr >= base && addr < base + 0x1000;
        match verdict {
            AuditVerdict::DeliverMmio { offset, .. } => {
                prop_assert!(inside);
                prop_assert_eq!(offset, addr - base);
            }
            AuditVerdict::NotMine => prop_assert!(!inside),
            other => prop_assert!(false, "unexpected {:?}", other),
        }
        Ok(())
    });
}
