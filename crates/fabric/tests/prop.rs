//! Property-based tests of the fabric's conservation and isolation
//! invariants, on the in-tree `optimus-testkit` harness (replay failures
//! with `OPTIMUS_PROP_SEED=<printed seed>`).

use optimus_cci::channel::SelectorPolicy;
use optimus_cci::packet::{AccelId, Tag, UpPacket};
use optimus_fabric::accelerator::Accelerator;
use optimus_fabric::auditor::{AuditVerdict, Auditor, OutboundReq};
use optimus_fabric::device::FpgaDevice;
use optimus_fabric::mmio::{accel_mmio_base, accel_reg};
use optimus_fabric::mux_tree::{MuxTree, TreeConfig};
use optimus_fabric::testing::StreamCopier;
use optimus_mem::addr::{Gva, Hpa, Iova, PageSize};
use optimus_mem::page_table::PageFlags;
use optimus_testkit::gens;
use optimus_testkit::runner::check;
use optimus_testkit::{prop_assert, prop_assert_eq};

/// The multiplexer tree neither drops nor duplicates nor reorders any
/// accelerator's packets, for arbitrary injection schedules.
#[test]
fn mux_tree_conserves_packets() {
    let gen = gens::zip2(
        gens::usize_in(2..9),
        gens::vec_of(
            gens::zip2(gens::usize_in(0..8), gens::u64_in(1..5)),
            1..200,
        ),
    );
    check(
        "mux_tree_conserves_packets",
        &gen,
        |(leaves, schedule): &(usize, Vec<(usize, u64)>)| {
            let leaves = *leaves;
            let mut tree = MuxTree::new(TreeConfig { leaves, arity: 2 });
            let mut injected: Vec<Vec<u32>> = vec![Vec::new(); leaves];
            let mut seq = 0u32;
            let mut now = 0u64;
            let mut received: Vec<Vec<u32>> = vec![Vec::new(); leaves];
            for &(accel, gap) in schedule {
                let a = accel % leaves;
                now += gap;
                if tree.can_accept(a) {
                    tree.inject(
                        a,
                        UpPacket::DmaRead {
                            iova: Iova::new(0),
                            src: AccelId(a as u8),
                            tag: Tag(seq),
                        },
                        now,
                    );
                    injected[a].push(seq);
                    seq += 1;
                }
                tree.step(now);
                while let Some(p) = tree.pop_root(now) {
                    if let UpPacket::DmaRead { src, tag, .. } = p {
                        received[src.0 as usize].push(tag.0);
                    }
                }
            }
            // Drain completely.
            for _ in 0..10_000u64 {
                now += 1;
                tree.step(now);
                while let Some(p) = tree.pop_root(now) {
                    if let UpPacket::DmaRead { src, tag, .. } = p {
                        received[src.0 as usize].push(tag.0);
                    }
                }
            }
            // Per-accelerator: exact same tags, in FIFO order.
            for a in 0..leaves {
                prop_assert_eq!(&received[a], &injected[a], "accel {}", a);
            }
            Ok(())
        },
    );
}

/// Auditor translation is exact for any offset/GVA pair, and DMA verdicts
/// accept exactly the matching accelerator ID.
#[test]
fn auditor_translation_and_identity() {
    let gen = gens::zip4(
        gens::u64_any(),
        gens::u64_any(),
        gens::u8_in(0..8),
        gens::u8_in(0..8),
    );
    check(
        "auditor_translation_and_identity",
        &gen,
        |&(offset, gva, id, probe)| {
            let mut a = Auditor::new(AccelId(id), 0x11000 + id as u64 * 0x1000, 0x1000);
            a.set_offset(offset);
            let pkt = a.translate(OutboundReq {
                gva: Gva::new(gva),
                write: None,
                tag: Tag(1),
            });
            match pkt {
                Ok(UpPacket::DmaRead { iova, src, .. }) => {
                    prop_assert_eq!(iova.raw(), gva.wrapping_add(offset));
                    prop_assert_eq!(src, AccelId(id));
                }
                other => prop_assert!(false, "unexpected {:?}", other),
            }
            let down = optimus_cci::packet::DownPacket::DmaWriteAck {
                dst: AccelId(probe),
                tag: Tag(0),
            };
            let verdict = a.audit(&down);
            if probe == id {
                let delivered = matches!(verdict, AuditVerdict::DeliverDma { .. });
                prop_assert!(delivered);
            } else {
                prop_assert_eq!(verdict, AuditVerdict::NotMine);
            }
            Ok(())
        },
    );
}

fn copier_src(a: usize) -> u64 {
    0x100_000 + a as u64 * 0x40_000
}

fn copier_dst(a: usize) -> u64 {
    0x800_000 + a as u64 * 0x40_000
}

/// Runs one copier workload on a fresh device in the given fast-forward
/// mode and returns an exhaustive fingerprint: final cycle, drop/fault
/// counters, per-port stats, register read-backs, and the destination
/// memory image. Bit-exact fast-forwarding means this fingerprint is
/// identical in both modes.
fn copier_fingerprint(
    monitored: bool,
    fastfwd: bool,
    lines: &[u64],
    xor: u64,
    idle_run: u64,
) -> (Vec<u64>, Vec<u8>) {
    let mut dev = if monitored {
        let accels: Vec<Box<dyn Accelerator>> = lines
            .iter()
            .map(|_| Box::new(StreamCopier::new()) as Box<dyn Accelerator>)
            .collect();
        FpgaDevice::new_monitored(accels, 2, SelectorPolicy::Auto)
    } else {
        assert_eq!(lines.len(), 1);
        FpgaDevice::new_passthrough(Box::new(StreamCopier::new()), SelectorPolicy::Auto)
    };
    dev.set_fast_forward(fastfwd);
    // Identity-map 256 MB of IO space.
    for i in 0..128u64 {
        dev.host_mut()
            .iommu_mut()
            .map(
                Iova::new(i * PageSize::Huge.bytes()),
                Hpa::new(i * PageSize::Huge.bytes()),
                PageSize::Huge,
                PageFlags::rw(),
            )
            .unwrap();
    }
    for (a, &n) in lines.iter().enumerate() {
        for l in 0..n {
            let mut line = [0u8; 64];
            line[0] = (l as u8).wrapping_add(1);
            line[1] = a as u8;
            dev.host_mut()
                .memory_mut()
                .write_line(Hpa::new(copier_src(a) + l * 64), &line);
        }
    }
    for (a, &n) in lines.iter().enumerate() {
        let base = accel_mmio_base(a);
        dev.mmio_write(base + StreamCopier::REG_SRC, copier_src(a));
        dev.mmio_write(base + StreamCopier::REG_DST, copier_dst(a));
        dev.mmio_write(base + StreamCopier::REG_LINES, n);
        dev.mmio_write(base + StreamCopier::REG_XOR, xor);
        dev.mmio_write(base + accel_reg::CTRL_CMD, accel_reg::CMD_START);
    }
    dev.run(idle_run);
    let finished = dev.run_until(400_000, |d| (0..d.num_accels()).all(|i| d.accel(i).is_done()));
    let mut fp = vec![
        dev.now(),
        finished as u64,
        dev.dropped_packets(),
        dev.host().faulted_dmas(),
        dev.host().total_dma_bytes(),
    ];
    for i in 0..dev.num_accels() {
        let (read, written) = dev.port(i).byte_counts();
        fp.extend_from_slice(&[
            read,
            written,
            dev.port(i).stale_discarded(),
            dev.accel(i).is_done() as u64,
        ]);
    }
    // Blocking MMIO reads exercise the mailbox path in both modes too.
    for a in 0..lines.len() {
        fp.push(dev.mmio_read(accel_mmio_base(a) + StreamCopier::REG_LINES));
    }
    fp.push(dev.now());
    let mut mem = Vec::new();
    for (a, &n) in lines.iter().enumerate() {
        for l in 0..n {
            mem.extend_from_slice(&dev.host().memory().read_line(Hpa::new(copier_dst(a) + l * 64)));
        }
    }
    (fp, mem)
}

/// Differential equivalence (monitored fabric): fast-forwarding produces
/// the exact same final cycle, stats, register values, and memory image as
/// per-cycle stepping, for arbitrary workload shapes.
#[test]
fn fast_forward_is_bit_exact_monitored() {
    let gen = gens::zip4(
        gens::u64_in(1..40),
        gens::u64_in(1..40),
        gens::u64_in(0..256),
        gens::u64_in(0..4000),
    );
    check(
        "fast_forward_is_bit_exact_monitored",
        &gen,
        |&(la, lb, xor, idle)| {
            let fast = copier_fingerprint(true, true, &[la, lb], xor, idle);
            let slow = copier_fingerprint(true, false, &[la, lb], xor, idle);
            prop_assert_eq!(&fast.0, &slow.0, "stat fingerprints diverge");
            prop_assert_eq!(&fast.1, &slow.1, "memory images diverge");
            Ok(())
        },
    );
}

/// Differential equivalence for the pass-through (direct assignment)
/// fabric, which has no tree and uses the injection-interval gate.
#[test]
fn fast_forward_is_bit_exact_passthrough() {
    let gen = gens::zip3(
        gens::u64_in(1..64),
        gens::u64_in(0..256),
        gens::u64_in(0..4000),
    );
    check(
        "fast_forward_is_bit_exact_passthrough",
        &gen,
        |&(lines, xor, idle)| {
            let fast = copier_fingerprint(false, true, &[lines], xor, idle);
            let slow = copier_fingerprint(false, false, &[lines], xor, idle);
            prop_assert_eq!(&fast.0, &slow.0, "stat fingerprints diverge");
            prop_assert_eq!(&fast.1, &slow.1, "memory images diverge");
            Ok(())
        },
    );
}

/// MMIO range checks: the auditor forwards exactly its own 4 KB page.
#[test]
fn auditor_mmio_window() {
    let gen = gens::zip2(gens::u8_in(0..8), gens::u64_in(0..0x20000));
    check("auditor_mmio_window", &gen, |&(id, addr)| {
        let base = 0x11000 + id as u64 * 0x1000;
        let mut a = Auditor::new(AccelId(id), base, 0x1000);
        let verdict = a.audit(&optimus_cci::packet::DownPacket::MmioWrite { addr, value: 1 });
        let inside = addr >= base && addr < base + 0x1000;
        match verdict {
            AuditVerdict::DeliverMmio { offset, .. } => {
                prop_assert!(inside);
                prop_assert_eq!(offset, addr - base);
            }
            AuditVerdict::NotMine => prop_assert!(!inside),
            other => prop_assert!(false, "unexpected {:?}", other),
        }
        Ok(())
    });
}
