//! Auditors: the isolation checkpoint in front of every accelerator.
//!
//! The multiplexer tree does *lazy* routing (§4.1): it never inspects
//! addresses, it just propagates packets. Isolation decisions are deferred
//! to one auditor per physical accelerator, which:
//!
//! * translates outgoing DMA addresses from guest virtual addresses to IO
//!   virtual addresses by adding the accelerator's page-table-slicing
//!   offset (a single add — one cycle in hardware);
//! * stamps outgoing DMAs with the accelerator's ID, and on the return path
//!   forwards a DMA packet to its accelerator only if the packet's ID
//!   matches, discarding strays;
//! * forwards an incoming MMIO packet only if it falls inside the
//!   accelerator's MMIO page, discarding the rest.

use optimus_cci::packet::{AccelId, DownPacket, Line, Tag, UpPacket};
use optimus_mem::addr::{Gva, Iova};

/// A request emitted by an accelerator, before auditor translation.
#[derive(Debug)]
pub struct OutboundReq {
    /// The guest virtual address the accelerator used.
    pub gva: Gva,
    /// Write payload, or `None` for a read.
    pub write: Option<Box<Line>>,
    /// The port-assigned tag.
    pub tag: Tag,
}

/// What an auditor decided about an incoming downstream packet.
#[derive(Debug, PartialEq, Eq)]
pub enum AuditVerdict {
    /// Deliver to the accelerator: a DMA response with matching ID.
    DeliverDma {
        /// The matched request tag.
        tag: Tag,
        /// Line data (None for write acks).
        data: Option<Box<Line>>,
    },
    /// Deliver an MMIO access (page-relative offset).
    DeliverMmio {
        /// Offset within the accelerator's MMIO page.
        offset: u64,
        /// `Some(value)` for a write, `None` for a read.
        write: Option<u64>,
    },
    /// Not addressed to this accelerator.
    NotMine,
    /// Addressed at this accelerator but rejected (isolation violation).
    Discarded,
}

/// Per-accelerator auditor.
#[derive(Debug)]
pub struct Auditor {
    id: AccelId,
    offset: u64,
    mmio_base: u64,
    mmio_size: u64,
    win_base: u64,
    win_len: u64,
    discarded_dma: u64,
    discarded_mmio: u64,
}

impl Auditor {
    /// Creates the auditor for accelerator `id` guarding the MMIO page at
    /// `[mmio_base, mmio_base + mmio_size)`. The outbound IOVA window
    /// starts unrestricted (passthrough semantics) until the VCU programs
    /// one.
    pub fn new(id: AccelId, mmio_base: u64, mmio_size: u64) -> Self {
        Self {
            id,
            offset: 0,
            mmio_base,
            mmio_size,
            win_base: 0,
            win_len: u64::MAX,
            discarded_dma: 0,
            discarded_mmio: 0,
        }
    }

    /// The accelerator this auditor guards.
    pub fn id(&self) -> AccelId {
        self.id
    }

    /// The current page-table-slicing offset (IOVA − GVA).
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Installs a new slicing offset (driven by the VCU offset table).
    pub fn set_offset(&mut self, offset: u64) {
        self.offset = offset;
    }

    /// Restricts outbound DMA to the IOVA window `[base, base + len)`
    /// (driven by the VCU window tables at install time). `len` of
    /// `u64::MAX` means unrestricted.
    pub fn set_window(&mut self, base: u64, len: u64) {
        self.win_base = base;
        self.win_len = len;
    }

    /// The programmed outbound window as `(base, len)`.
    pub fn window(&self) -> (u64, u64) {
        (self.win_base, self.win_len)
    }

    /// Whether a translated IOVA lands inside the programmed window. The
    /// subtract-and-compare form is wraparound-safe for windows near the
    /// top of the address space.
    fn in_window(&self, iova: u64) -> bool {
        iova.wrapping_sub(self.win_base) < self.win_len
    }

    /// Translates an accelerator request into an interconnect packet:
    /// adds the slicing offset, screens the result against the outbound
    /// IOVA window, and stamps the accelerator ID.
    ///
    /// A request whose translated IOVA falls outside the window is the
    /// hardware analogue of a wild pointer escaping the tenant's slice:
    /// it is discarded here (counted), and `Err` returns the tag so the
    /// device can retire the request with a master-abort response instead
    /// of letting it dangle in the port's in-flight table forever (which
    /// would wedge the preemption drain).
    ///
    /// # Errors
    ///
    /// `Err((tag, was_write))` when the translated IOVA is outside the
    /// window.
    pub fn translate(&mut self, req: OutboundReq) -> Result<UpPacket, (Tag, bool)> {
        let iova = Iova::new(req.gva.raw().wrapping_add(self.offset));
        if !self.in_window(iova.raw()) {
            self.discarded_dma += 1;
            return Err((req.tag, req.write.is_some()));
        }
        match req.write {
            Some(data) => Ok(UpPacket::DmaWrite {
                iova,
                data,
                src: self.id,
                tag: req.tag,
            }),
            None => Ok(UpPacket::DmaRead {
                iova,
                src: self.id,
                tag: req.tag,
            }),
        }
    }

    /// Audits a downstream packet.
    ///
    /// DMA packets are matched on the accelerator-ID field; MMIO packets on
    /// the address range. Packets that target this accelerator but fail the
    /// check are discarded and counted.
    pub fn audit(&mut self, pkt: &DownPacket) -> AuditVerdict {
        match pkt {
            DownPacket::DmaReadResp { data, dst, tag } => {
                if *dst == self.id {
                    AuditVerdict::DeliverDma {
                        tag: *tag,
                        data: Some(data.clone()),
                    }
                } else {
                    AuditVerdict::NotMine
                }
            }
            DownPacket::DmaWriteAck { dst, tag } => {
                if *dst == self.id {
                    AuditVerdict::DeliverDma {
                        tag: *tag,
                        data: None,
                    }
                } else {
                    AuditVerdict::NotMine
                }
            }
            DownPacket::MmioWrite { addr, value } => {
                if self.in_mmio_range(*addr) {
                    AuditVerdict::DeliverMmio {
                        offset: addr.wrapping_sub(self.mmio_base),
                        write: Some(*value),
                    }
                } else {
                    AuditVerdict::NotMine
                }
            }
            DownPacket::MmioRead { addr } => {
                if self.in_mmio_range(*addr) {
                    AuditVerdict::DeliverMmio {
                        offset: addr.wrapping_sub(self.mmio_base),
                        write: None,
                    }
                } else {
                    AuditVerdict::NotMine
                }
            }
        }
    }

    /// Records a discarded DMA packet that claimed this accelerator's
    /// identity but failed validation (used by the device when a response's
    /// tag is unknown, e.g. after a reset, or under fault injection).
    pub fn count_discarded_dma(&mut self) {
        self.discarded_dma += 1;
    }

    /// Records an out-of-range MMIO discard.
    pub fn count_discarded_mmio(&mut self) {
        self.discarded_mmio += 1;
    }

    /// (discarded DMA, discarded MMIO) counters.
    pub fn discard_counts(&self) -> (u64, u64) {
        (self.discarded_dma, self.discarded_mmio)
    }

    /// Whether `addr` falls inside `[mmio_base, mmio_base + mmio_size)`.
    ///
    /// Computed as a wrapping subtract-and-compare: the naive
    /// `addr < base + size` form overflows u64 when the page sits at the
    /// top of the address space, silently accepting every address (the
    /// auditor would fail *open*).
    fn in_mmio_range(&self, addr: u64) -> bool {
        addr.wrapping_sub(self.mmio_base) < self.mmio_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn auditor() -> Auditor {
        Auditor::new(AccelId(2), 0x13000, 0x1000)
    }

    #[test]
    fn translate_adds_offset_and_stamps_id() {
        let mut a = auditor();
        a.set_offset(64 << 30); // a 64 GB slice
        let pkt = a
            .translate(OutboundReq {
                gva: Gva::new(0x1000),
                write: None,
                tag: Tag(5),
            })
            .expect("unrestricted window");
        match pkt {
            UpPacket::DmaRead { iova, src, tag } => {
                assert_eq!(iova.raw(), (64u64 << 30) + 0x1000);
                assert_eq!(src, AccelId(2));
                assert_eq!(tag, Tag(5));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn write_translation_keeps_payload() {
        let mut a = auditor();
        let pkt = a
            .translate(OutboundReq {
                gva: Gva::new(0),
                write: Some(Box::new([7; 64])),
                tag: Tag(0),
            })
            .expect("unrestricted window");
        assert!(matches!(pkt, UpPacket::DmaWrite { ref data, .. } if data[0] == 7));
    }

    #[test]
    fn window_screens_translated_iovas_at_both_boundaries() {
        let mut a = auditor();
        let base = 64u64 << 30;
        let len = 1u64 << 30;
        a.set_offset(base);
        a.set_window(base, len);
        let req = |gva: u64| OutboundReq {
            gva: Gva::new(gva),
            write: None,
            tag: Tag(1),
        };
        assert!(a.translate(req(0)).is_ok(), "window base accepted");
        assert!(a.translate(req(len - 64)).is_ok(), "last line accepted");
        assert_eq!(
            a.translate(req(len)),
            Err((Tag(1), false)),
            "first IOVA past the window rejected"
        );
        // A gva that wraps the offset addition back *below* the window
        // must also be rejected (wild pointer aimed at a lower slice).
        assert_eq!(a.translate(req(u64::MAX - base + 1)), Err((Tag(1), false)));
        assert_eq!(a.discard_counts().0, 2, "both rejects counted");
    }

    #[test]
    fn mmio_range_boundary_values() {
        let mut a = auditor(); // page [0x13000, 0x14000)
        let probe = |a: &mut Auditor, addr: u64| {
            a.audit(&DownPacket::MmioRead { addr }) != AuditVerdict::NotMine
        };
        assert!(!probe(&mut a, 0x12fff), "below base rejected");
        assert!(probe(&mut a, 0x13000), "base accepted");
        assert!(probe(&mut a, 0x13fff), "last byte accepted");
        assert!(!probe(&mut a, 0x14000), "base + size rejected (exclusive)");
    }

    #[test]
    fn mmio_range_does_not_wrap_at_top_of_address_space() {
        // Regression (isolation spec harness): with the page at the top of
        // the address space, `base + size` overflows u64 to a tiny value
        // and the naive `addr < base + size` comparison rejects the
        // page's own addresses while `addr >= base` accepts nothing —
        // and for partially-overflowed layouts it accepted *wrapped*
        // foreign addresses. The wrapping-subtract form is exact.
        let mut a = Auditor::new(AccelId(0), u64::MAX - 0xfff, 0x2000);
        let probe = |a: &mut Auditor, addr: u64| {
            a.audit(&DownPacket::MmioRead { addr }) != AuditVerdict::NotMine
        };
        assert!(probe(&mut a, u64::MAX - 0xfff), "base accepted");
        assert!(probe(&mut a, u64::MAX), "top byte accepted");
        assert!(!probe(&mut a, u64::MAX - 0x1000), "below base rejected");
        // The range arithmetically wraps to [0, 0x1000); the auditor must
        // honor the declared span, not silently exclude it.
        assert!(probe(&mut a, 0x0fff), "wrapped tail accepted as declared");
        assert!(!probe(&mut a, 0x1000), "past wrapped tail rejected");
    }

    #[test]
    fn accepts_own_dma_rejects_foreign() {
        let mut a = auditor();
        let own = DownPacket::DmaWriteAck {
            dst: AccelId(2),
            tag: Tag(1),
        };
        assert!(matches!(a.audit(&own), AuditVerdict::DeliverDma { .. }));
        let foreign = DownPacket::DmaWriteAck {
            dst: AccelId(3),
            tag: Tag(1),
        };
        assert_eq!(a.audit(&foreign), AuditVerdict::NotMine);
    }

    #[test]
    fn mmio_range_check() {
        let mut a = auditor();
        let inside = DownPacket::MmioWrite {
            addr: 0x13040,
            value: 9,
        };
        assert_eq!(
            a.audit(&inside),
            AuditVerdict::DeliverMmio {
                offset: 0x40,
                write: Some(9)
            }
        );
        let outside = DownPacket::MmioWrite {
            addr: 0x14000,
            value: 9,
        };
        assert_eq!(a.audit(&outside), AuditVerdict::NotMine);
    }

    #[test]
    fn discard_counters_accumulate() {
        let mut a = auditor();
        a.count_discarded_dma();
        a.count_discarded_mmio();
        a.count_discarded_mmio();
        assert_eq!(a.discard_counts(), (1, 2));
    }
}
