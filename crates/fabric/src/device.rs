//! The composed FPGA device.
//!
//! [`FpgaDevice`] wires together every hardware component — accelerators,
//! their ports and clock dividers, the auditors, the multiplexer tree, the
//! VCU, and the host side of the interconnect — and advances the whole
//! machine one 400 MHz fabric cycle at a time.
//!
//! Two fabric configurations exist, matching the paper's evaluation:
//!
//! * [`FabricMode::Monitored`] — the OPTIMUS configuration: hardware
//!   monitor present, requests traverse the multiplexer tree (one packet
//!   per two cycles per node) and auditors enforce isolation;
//! * [`FabricMode::PassThrough`] — the baseline: a single accelerator wired
//!   directly to the shell, injecting one packet per cycle with no tree
//!   latency (virtualized by direct device assignment + vIOMMU).

use crate::accelerator::{AccelPort, Accelerator, CtrlStatus};
use crate::auditor::{AuditVerdict, Auditor};
use crate::mmio;
use crate::mux_tree::{MuxTree, TreeConfig};
use crate::platform::{DeviceIntegrity, FabricError, PlatformDevice};
use crate::vcu::{Vcu, VcuEffect};
use optimus_cci::channel::SelectorPolicy;
use optimus_cci::host_side::HostSide;
use optimus_cci::packet::{AccelId, DownPacket, UpPacket};
use optimus_cci::params::{PASSTHROUGH_INJECT_INTERVAL, TREE_LEVEL_DOWN_CYCLES};
use optimus_sim::clock::PlatformClock;
use optimus_sim::metrics;
use optimus_sim::queue::TimedQueue;
use optimus_sim::spec;
use optimus_sim::time::{ClockDivider, Cycle};

/// The fabric configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricMode {
    /// OPTIMUS: hardware monitor + multiplexer tree.
    Monitored(TreeConfig),
    /// Direct assignment baseline: one accelerator, no monitor.
    PassThrough,
}

/// The whole simulated FPGA plus its host interconnect.
pub struct FpgaDevice {
    mode: FabricMode,
    now: Cycle,
    accels: Vec<Box<dyn Accelerator>>,
    dividers: Vec<ClockDivider>,
    ports: Vec<AccelPort>,
    auditors: Vec<Auditor>,
    tree: Option<MuxTree>,
    vcu: Vcu,
    host: HostSide,
    down_pipe: TimedQueue<DownPacket>,
    down_latency: Cycle,
    pt_next_inject: Cycle,
    /// Shell scratch registers as a dense arena indexed by device-relative
    /// address (the MMIO-dispatch hot path: one load, no hashing, no
    /// allocation). Absent registers read as 0, like hardware.
    shell_regs: Box<[u64]>,
    dropped_packets: u64,
    fastfwd: bool,
    /// Burst length for batched stepping (see [`Self::run`]); 1 = scan the
    /// event horizon before every stepped cycle (pre-batching behavior).
    batch: Cycle,
    /// Last control status observed per accelerator, for cycle-exact
    /// flight-recorder preemption-phase edges. Only written while
    /// tracing; never feeds back into simulation.
    trace_status: Vec<CtrlStatus>,
}

impl core::fmt::Debug for FpgaDevice {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("FpgaDevice")
            .field("mode", &self.mode)
            .field("now", &self.now)
            .field("accels", &self.accels.len())
            .finish()
    }
}

impl FpgaDevice {
    /// Builds an OPTIMUS-configured device with the given accelerators
    /// behind a multiplexer tree of the given arity.
    ///
    /// # Panics
    ///
    /// Panics if `accels` is empty or exceeds the tree's leaf count
    /// assumptions (255 accelerators). Use
    /// [`try_new_monitored`](Self::try_new_monitored) to handle these as
    /// typed errors instead.
    pub fn new_monitored(
        accels: Vec<Box<dyn Accelerator>>,
        arity: usize,
        policy: SelectorPolicy,
    ) -> Self {
        Self::try_new_monitored(accels, arity, policy)
            .unwrap_or_else(|e| panic!("FpgaDevice::new_monitored: {e}"))
    }

    /// Fallible variant of [`new_monitored`](Self::new_monitored):
    /// validates the accelerator list and returns a [`FabricError`]
    /// instead of panicking, so a node constructing many devices can
    /// report which one failed.
    pub fn try_new_monitored(
        accels: Vec<Box<dyn Accelerator>>,
        arity: usize,
        policy: SelectorPolicy,
    ) -> Result<Self, FabricError> {
        if accels.is_empty() {
            return Err(FabricError::NoAccelerators);
        }
        if accels.len() >= 256 {
            return Err(FabricError::TooManyAccelerators { requested: accels.len(), max: 255 });
        }
        let config = TreeConfig {
            leaves: accels.len(),
            arity,
        };
        let levels = config.levels();
        let dividers = accels
            .iter()
            .map(|a| ClockDivider::from_mhz(a.meta().freq_mhz))
            .collect();
        let ports = accels.iter().map(|_| AccelPort::new()).collect();
        let auditors = (0..accels.len())
            .map(|i| Auditor::new(AccelId(i as u8), mmio::accel_mmio_base(i), mmio::ACCEL_PAGE))
            .collect();
        let n = accels.len();
        let trace_status = accels.iter().map(|a| a.status()).collect();
        Ok(Self {
            mode: FabricMode::Monitored(config),
            now: 0,
            accels,
            dividers,
            ports,
            auditors,
            tree: Some(MuxTree::new(config)),
            vcu: Vcu::new(n, levels),
            host: HostSide::new(policy),
            down_pipe: TimedQueue::new(),
            down_latency: TREE_LEVEL_DOWN_CYCLES * levels as u64,
            pt_next_inject: 0,
            shell_regs: vec![0; mmio::SHELL_SIZE as usize].into_boxed_slice(),
            dropped_packets: 0,
            fastfwd: optimus_sim::simrate::fast_forward_enabled(),
            batch: optimus_sim::simrate::batch_step_cycles(),
            trace_status,
        })
    }

    /// Builds a pass-through device: one accelerator, directly assigned.
    pub fn new_passthrough(accel: Box<dyn Accelerator>, policy: SelectorPolicy) -> Self {
        let dividers = vec![ClockDivider::from_mhz(accel.meta().freq_mhz)];
        let trace_status = vec![accel.status()];
        Self {
            mode: FabricMode::PassThrough,
            now: 0,
            accels: vec![accel],
            dividers,
            ports: vec![AccelPort::new()],
            auditors: vec![Auditor::new(
                AccelId(0),
                mmio::accel_mmio_base(0),
                mmio::ACCEL_PAGE,
            )],
            tree: None,
            vcu: Vcu::new(1, 0),
            host: HostSide::new(policy),
            down_pipe: TimedQueue::new(),
            down_latency: 0,
            pt_next_inject: 0,
            shell_regs: vec![0; mmio::SHELL_SIZE as usize].into_boxed_slice(),
            dropped_packets: 0,
            fastfwd: optimus_sim::simrate::fast_forward_enabled(),
            batch: optimus_sim::simrate::batch_step_cycles(),
            trace_status,
        }
    }

    /// The current fabric cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The fabric configuration.
    pub fn mode(&self) -> FabricMode {
        self.mode
    }

    /// Number of physical accelerators.
    pub fn num_accels(&self) -> usize {
        self.accels.len()
    }

    /// The host side (memory, IOMMU, channels).
    pub fn host(&self) -> &HostSide {
        &self.host
    }

    /// Mutable host side (hypervisor memory/IOPT management).
    pub fn host_mut(&mut self) -> &mut HostSide {
        &mut self.host
    }

    /// Accelerator `i`'s DMA port (bandwidth/latency measurement point).
    pub fn port(&self, i: usize) -> &AccelPort {
        &self.ports[i]
    }

    /// Mutable port access (for measurement windows).
    pub fn port_mut(&mut self, i: usize) -> &mut AccelPort {
        &mut self.ports[i]
    }

    /// Accelerator `i` (dynamic).
    pub fn accel(&self, i: usize) -> &dyn Accelerator {
        self.accels[i].as_ref()
    }

    /// Mutable accelerator access (tests and direct configuration).
    pub fn accel_mut(&mut self, i: usize) -> &mut dyn Accelerator {
        self.accels[i].as_mut()
    }

    /// Auditor `i` (discard counters for isolation tests).
    pub fn auditor(&self, i: usize) -> &Auditor {
        &self.auditors[i]
    }

    /// The VCU state.
    pub fn vcu(&self) -> &Vcu {
        &self.vcu
    }

    /// Packets dropped at the shell/auditor layer (bad address or identity).
    pub fn dropped_packets(&self) -> u64 {
        self.dropped_packets
    }

    /// Opens throughput measurement windows on every port.
    pub fn open_windows(&mut self) {
        let now = self.now;
        for p in &mut self.ports {
            p.open_window(now);
        }
    }

    /// Closes throughput measurement windows on every port.
    pub fn close_windows(&mut self) {
        let now = self.now;
        for p in &mut self.ports {
            p.close_window(now);
        }
    }

    /// Advances the machine one fabric cycle.
    pub fn step(&mut self) {
        self.step_inner(optimus_sim::trace::enabled());
    }

    /// The step body with the flight-recorder gate hoisted: batched
    /// stepping ([`step_many`](PlatformClock::step_many)) reads the
    /// thread-local once per burst instead of once per cycle. The gate is
    /// constant within a `run` (workers set it before stepping, callers
    /// between runs), so hoisting cannot change which cycles trace.
    fn step_inner(&mut self, tracing: bool) {
        let now = self.now;

        // 1. Deliver at most one downstream packet.
        if let Some(pkt) = self.down_pipe.pop_ready(now) {
            self.dispatch_down(pkt, now);
        }

        // 2. Rising clock edges.
        for i in 0..self.accels.len() {
            if self.dividers[i].tick(now) {
                self.accels[i].step(now, &mut self.ports[i]);
            }
        }

        // 3. Auditor translation into the fabric.
        match self.mode {
            FabricMode::Monitored(_) => {
                let tree = self.tree.as_mut().expect("monitored mode has a tree");
                for i in 0..self.accels.len() {
                    if self.ports[i].has_pending() && tree.can_accept(i) {
                        let req = self.ports[i].take_pending().expect("pending checked");
                        match self.auditors[i].translate(req) {
                            Ok(pkt) => tree.inject(i, pkt, now),
                            Err((tag, _)) => Self::abort_outbound(
                                &mut self.dropped_packets,
                                &mut self.ports[i],
                                i,
                                tag,
                                now,
                            ),
                        }
                    }
                }
                // 4. Tree arbitration.
                tree.step(now);
                // 5. Shell: root → host (≤ 1 packet/cycle).
                if self.host.can_accept(now) {
                    if let Some(pkt) = tree.pop_root(now) {
                        self.host.submit(pkt, now);
                    }
                }
            }
            FabricMode::PassThrough => {
                // Direct wiring at full rate.
                if now >= self.pt_next_inject
                    && self.ports[0].has_pending()
                    && self.host.can_accept(now)
                {
                    let req = self.ports[0].take_pending().expect("pending checked");
                    match self.auditors[0].translate(req) {
                        Ok(pkt) => {
                            self.host.submit(pkt, now);
                            self.pt_next_inject = now + PASSTHROUGH_INJECT_INTERVAL;
                        }
                        Err((tag, _)) => Self::abort_outbound(
                            &mut self.dropped_packets,
                            &mut self.ports[0],
                            0,
                            tag,
                            now,
                        ),
                    }
                }
            }
        }

        // 6. Host responses enter the downstream pipeline.
        if let Some(pkt) = self.host.pop_response(now) {
            self.down_pipe.push(pkt, now + self.down_latency);
        }

        if tracing {
            self.trace_preempt_phases(now);
        }

        self.now += 1;
    }

    /// Flight-recorder edge detection on accelerator control status:
    /// emits cycle-exact `preempt.save` spans (Saving → Saved) and
    /// restore markers on each accelerator's own track. Read-only with
    /// respect to simulation state.
    fn trace_preempt_phases(&mut self, now: Cycle) {
        use optimus_sim::trace::{self, Track};
        for i in 0..self.accels.len() {
            let status = self.accels[i].status();
            let prev = self.trace_status[i];
            if status == prev {
                continue;
            }
            self.trace_status[i] = status;
            let t = Track::accel(i);
            match (prev, status) {
                (_, CtrlStatus::Saving) => trace::begin(t, "preempt.save", now, &[]),
                (CtrlStatus::Saving, CtrlStatus::Saved) => {
                    trace::end(t, "preempt.save", now);
                    trace::count(t, "state_saves", 1);
                }
                (CtrlStatus::Saved, CtrlStatus::Running) => {
                    trace::instant(t, "preempt.restore_begin", now, &[]);
                    trace::count(t, "state_restores", 1);
                }
                _ => trace::instant(t, "ctrl_status", now, &[("status", status as u64)]),
            }
        }
    }

    /// Whether event-horizon fast-forwarding is active on this device.
    pub fn fast_forward_enabled(&self) -> bool {
        self.fastfwd
    }

    /// Overrides the fast-forward mode sampled from `OPTIMUS_NO_FASTFWD` at
    /// construction. Used by the differential equivalence tests to run two
    /// identical devices in opposite modes within one process.
    pub fn set_fast_forward(&mut self, on: bool) {
        self.fastfwd = on;
    }

    /// The batched-stepping burst length [`run`](Self::run) uses.
    pub fn batch_step(&self) -> Cycle {
        self.batch
    }

    /// Overrides the burst length sampled from `OPTIMUS_BATCH_STEP` at
    /// construction (1 disables batching). Used by the differential
    /// equivalence tests to run identical devices batched and unbatched
    /// within one process.
    pub fn set_batch_step(&mut self, k: Cycle) {
        self.batch = k.max(1);
    }

    /// Earliest future cycle at which [`step`](Self::step) can do anything,
    /// or `None` if the whole machine is quiescent until externally poked.
    ///
    /// A cycle may be skipped only if stepping it is provably a pure no-op;
    /// every term below is conservative (`Some(now)` whenever in doubt), so
    /// fast-forward is bit-exact by construction.
    pub fn next_event(&self) -> Option<Cycle> {
        let now = self.now;
        let mut horizon: Option<Cycle> = None;
        let mut merge = |t: Cycle| {
            let t = t.max(now);
            horizon = Some(horizon.map_or(t, |h: Cycle| h.min(t)));
        };

        // 1. Downstream pipeline delivery.
        if let Some(t) = self.down_pipe.next_ready() {
            merge(t);
        }
        // 6. Host responses (DMA completions, CPU MMIO ops in flight).
        if let Some(t) = self.host.next_event(now) {
            merge(t);
        }
        // 4/5. Tree arbitration and root drain.
        if let Some(tree) = self.tree.as_ref() {
            if let Some(t) = tree.next_event(now) {
                merge(t);
            }
        }
        // 2/3. Accelerator edges and auditor forwarding.
        for i in 0..self.accels.len() {
            if self.ports[i].has_pending() {
                // The auditor forwards pending requests every fabric cycle.
                merge(now);
                continue;
            }
            let hint = if self.ports[i].queued_responses() > 0 {
                Some(now)
            } else {
                self.accels[i].next_event(now, &self.ports[i])
            };
            if let Some(t) = hint {
                merge(self.dividers[i].next_edge(t.max(now)));
            }
        }
        horizon
    }

    /// Runs the machine for `cycles` fabric cycles, batching busy
    /// stretches adaptively (bursts grow toward `self.batch` while the
    /// device stays busy, collapse on every skip; see
    /// [`advance_toward_adaptive`](PlatformClock::advance_toward_adaptive)
    /// for the bit-exactness argument). `run` has no per-cycle
    /// observation — nothing outside the device is consulted until it
    /// returns — so it is the one place batching is unconditionally safe.
    pub fn run(&mut self, cycles: Cycle) {
        let end = self.now + cycles;
        let cap = self.batch;
        let mut burst: Cycle = 1;
        while self.now < end {
            self.advance_toward_adaptive(end, &mut burst, cap);
        }
        optimus_sim::simrate::add_cycles(cycles);
    }

    /// Runs until `predicate` returns true, up to `max_cycles`.
    /// Returns `true` if the predicate fired.
    ///
    /// With fast-forwarding on, the predicate is evaluated only at event
    /// cycles (device state is constant across skipped gaps, so any
    /// state-derived predicate fires at the same cycle either way).
    pub fn run_until(&mut self, max_cycles: Cycle, mut predicate: impl FnMut(&Self) -> bool) -> bool {
        let start = self.now;
        let end = self.now + max_cycles;
        let mut fired = false;
        while self.now < end {
            if predicate(self) {
                fired = true;
                break;
            }
            self.advance_toward(end);
        }
        let hit = fired || predicate(self);
        optimus_sim::simrate::add_cycles(self.now - start);
        hit
    }

    /// Retires a request the auditor's outbound window screened off: the
    /// accelerator receives a master-abort response (`data: None`) in the
    /// same cycle, so the wild request cannot dangle in the port's
    /// in-flight table and wedge the preemption drain. The auditor already
    /// counted the discard; the device folds it into its own drop counter
    /// and the metrics plane.
    /// (Associated fn over the disjoint fields so the mux tree can stay
    /// borrowed at the call site.)
    fn abort_outbound(
        dropped_packets: &mut u64,
        port: &mut AccelPort,
        idx: usize,
        tag: optimus_cci::packet::Tag,
        now: Cycle,
    ) {
        *dropped_packets += 1;
        metrics::inc(metrics::FABRIC_AUDITOR_REJECTS, idx as u32, 1);
        port.deliver(tag, None, now);
    }

    fn dispatch_down(&mut self, pkt: DownPacket, now: Cycle) {
        match &pkt {
            DownPacket::DmaReadResp { dst, .. } | DownPacket::DmaWriteAck { dst, .. } => {
                let idx = dst.0 as usize;
                if idx >= self.accels.len() {
                    self.dropped_packets += 1;
                    return;
                }
                match self.auditors[idx].audit(&pkt) {
                    AuditVerdict::DeliverDma { tag, data } => {
                        if !self.ports[idx].deliver(tag, data, now) {
                            // Stale tag (e.g. a response outliving a reset):
                            // the port discarded it, and the discard must
                            // surface in the device's integrity counters
                            // exactly once — it was previously visible only
                            // in the port-local counter, so
                            // `HvStats.discarded_dma` undercounted.
                            self.auditors[idx].count_discarded_dma();
                            self.dropped_packets += 1;
                            metrics::inc(metrics::FABRIC_AUDITOR_REJECTS, idx as u32, 1);
                        }
                    }
                    _ => {
                        self.auditors[idx].count_discarded_dma();
                        self.dropped_packets += 1;
                        metrics::inc(metrics::FABRIC_AUDITOR_REJECTS, idx as u32, 1);
                    }
                }
            }
            DownPacket::MmioWrite { addr, value } => self.mmio_dispatch(*addr, Some(*value), now),
            DownPacket::MmioRead { addr } => self.mmio_dispatch(*addr, None, now),
        }
    }

    fn mmio_dispatch(&mut self, addr: u64, write: Option<u64>, now: Cycle) {
        // Shell region: a direct arena load/store.
        if addr < mmio::SHELL_SIZE {
            match write {
                Some(v) => {
                    self.shell_regs[addr as usize] = v;
                }
                None => {
                    let value = self.shell_regs[addr as usize];
                    self.host.submit(UpPacket::MmioReadResp { addr, value }, now);
                }
            }
            return;
        }
        // VCU page: intercepted before the tree (§4.1).
        if addr >= mmio::VCU_BASE && addr < mmio::VCU_BASE + mmio::VCU_SIZE {
            let offset = addr - mmio::VCU_BASE;
            match write {
                Some(v) => match self.vcu.write(offset, v) {
                    VcuEffect::OffsetUpdated { index } => {
                        self.auditors[index].set_offset(self.vcu.offset(index));
                    }
                    VcuEffect::WindowUpdated { index } => {
                        let (base, len) = self.vcu.window(index);
                        self.auditors[index].set_window(base, len);
                    }
                    VcuEffect::ResetPulsed { index } => self.reset_accel(index),
                    VcuEffect::None | VcuEffect::Ignored => {}
                },
                None => {
                    let value = self.vcu.read(offset);
                    self.host.submit(UpPacket::MmioReadResp { addr, value }, now);
                }
            }
            return;
        }
        // Accelerator pages, gated by the auditors.
        if let Some((idx, _)) = mmio::decode_accel_addr(addr) {
            if idx < self.accels.len() {
                match self.auditors[idx].audit(&match write {
                    Some(value) => DownPacket::MmioWrite { addr, value },
                    None => DownPacket::MmioRead { addr },
                }) {
                    AuditVerdict::DeliverMmio { offset, write: Some(v) } => {
                        if spec::enabled() {
                            spec::check_mmio_deliver(
                                metrics::device_scope(),
                                idx,
                                addr,
                                mmio::accel_mmio_base(idx),
                                mmio::ACCEL_PAGE,
                            );
                        }
                        self.accels[idx].mmio_write(offset, v);
                    }
                    AuditVerdict::DeliverMmio { offset, write: None } => {
                        if spec::enabled() {
                            spec::check_mmio_deliver(
                                metrics::device_scope(),
                                idx,
                                addr,
                                mmio::accel_mmio_base(idx),
                                mmio::ACCEL_PAGE,
                            );
                        }
                        let value = self.accels[idx].mmio_read(offset);
                        self.host.submit(UpPacket::MmioReadResp { addr, value }, now);
                    }
                    _ => {
                        self.auditors[idx].count_discarded_mmio();
                        self.dropped_packets += 1;
                        metrics::inc(metrics::FABRIC_AUDITOR_REJECTS, idx as u32, 1);
                    }
                }
                return;
            }
        }
        // Nothing claimed the address: discard; reads master-abort as !0.
        self.dropped_packets += 1;
        if write.is_none() {
            self.host
                .submit(UpPacket::MmioReadResp { addr, value: u64::MAX }, now);
        }
    }

    /// Pulses accelerator `index`'s reset line: clears its architectural
    /// state, its port, and any of its packets queued in the tree. In-flight
    /// host-side packets return later and are discarded as stale.
    pub fn reset_accel(&mut self, index: usize) {
        self.accels[index].reset();
        self.ports[index].reset();
        if let Some(tree) = self.tree.as_mut() {
            tree.flush_accel(index);
        }
    }

    // ---- CPU-facing MMIO --------------------------------------------------

    /// CPU-side MMIO write (asynchronous: takes effect after the fabric
    /// transport latency).
    pub fn mmio_write(&mut self, addr: u64, value: u64) {
        self.host.inject_mmio_write(addr, value, self.now);
    }

    /// CPU-side blocking MMIO read: steps the device until the response
    /// returns.
    ///
    /// # Panics
    ///
    /// Panics if no response arrives within a generous timeout (indicates a
    /// wiring bug, since even discarded reads master-abort).
    pub fn mmio_read(&mut self, addr: u64) -> u64 {
        self.host.inject_mmio_read(addr, self.now);
        let start = self.now;
        let end = self.now + 1_000_000;
        while self.now < end {
            // Poll before stepping: the response surfaces at the cycle it
            // becomes ready, with the same final `now` in both modes (the
            // per-cycle path never executes the step of the ready cycle
            // either, since the old loop checked after incrementing).
            if let Some((raddr, value)) = self.host.take_mmio_response(self.now) {
                debug_assert_eq!(raddr, addr, "interleaved MMIO reads are not supported");
                optimus_sim::simrate::add_cycles(self.now - start);
                return value;
            }
            self.advance_toward(end);
        }
        panic!("MMIO read of {addr:#x} never completed");
    }

    /// Test hook: injects an arbitrary downstream packet (e.g. a misrouted
    /// DMA response for isolation testing).
    pub fn inject_down_packet(&mut self, pkt: DownPacket) {
        self.down_pipe.push(pkt, self.now);
    }
}

impl PlatformClock for FpgaDevice {
    fn now(&self) -> Cycle {
        self.now
    }

    fn next_event(&self) -> Option<Cycle> {
        FpgaDevice::next_event(self)
    }

    fn step_cycle(&mut self) {
        self.step();
    }

    fn step_many(&mut self, k: Cycle) {
        // Hoists the flight-recorder gate (and the step-call dispatch) out
        // of the burst loop; otherwise identical to `k` single steps.
        let tracing = optimus_sim::trace::enabled();
        for _ in 0..k {
            self.step_inner(tracing);
        }
    }

    fn skip_to(&mut self, t: Cycle) {
        self.now = t;
    }

    fn fast_forward(&self) -> bool {
        self.fastfwd
    }
}

impl PlatformDevice for FpgaDevice {
    fn run(&mut self, cycles: Cycle) {
        FpgaDevice::run(self, cycles);
    }

    fn mmio_read(&mut self, addr: u64) -> u64 {
        FpgaDevice::mmio_read(self, addr)
    }

    fn mmio_write(&mut self, addr: u64, value: u64) {
        FpgaDevice::mmio_write(self, addr, value);
    }

    fn num_accels(&self) -> usize {
        FpgaDevice::num_accels(self)
    }

    fn peek_app_reg(&self, slot: usize, offset: u64) -> u64 {
        self.accels[slot].peek_reg(offset)
    }

    fn accel_status(&self, slot: usize) -> CtrlStatus {
        self.accels[slot].status()
    }

    fn reset_accel(&mut self, slot: usize) {
        FpgaDevice::reset_accel(self, slot);
    }

    fn host(&self) -> &HostSide {
        FpgaDevice::host(self)
    }

    fn host_mut(&mut self) -> &mut HostSide {
        FpgaDevice::host_mut(self)
    }

    fn integrity(&self) -> DeviceIntegrity {
        let mut out = DeviceIntegrity { dropped_packets: self.dropped_packets, ..Default::default() };
        for a in &self.auditors {
            let (dma, mmio) = a.discard_counts();
            out.discarded_dma += dma;
            out.discarded_mmio += mmio;
        }
        out
    }

    fn set_fast_forward(&mut self, on: bool) {
        FpgaDevice::set_fast_forward(self, on);
    }

    fn set_batch_step(&mut self, k: Cycle) {
        FpgaDevice::set_batch_step(self, k);
    }

    fn port_forwarded(&self, slot: usize) -> u64 {
        self.tree.as_ref().map_or(0, |t| t.forwarded_by(slot))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mmio::{accel_reg, vcu_reg};
    use crate::testing::StreamCopier;
    use optimus_cci::packet::Tag;
    use optimus_mem::addr::{Hpa, Iova, PageSize};
    use optimus_mem::page_table::PageFlags;

    fn copier_device(n: usize) -> FpgaDevice {
        let accels: Vec<Box<dyn Accelerator>> = (0..n)
            .map(|_| Box::new(StreamCopier::new()) as Box<dyn Accelerator>)
            .collect();
        let mut dev = FpgaDevice::new_monitored(accels, 2, SelectorPolicy::Auto);
        // Identity-map 256 MB of IO space.
        for i in 0..128u64 {
            dev.host_mut()
                .iommu_mut()
                .map(
                    Iova::new(i * PageSize::Huge.bytes()),
                    Hpa::new(i * PageSize::Huge.bytes()),
                    PageSize::Huge,
                    PageFlags::rw(),
                )
                .unwrap();
        }
        dev
    }

    #[test]
    fn vcu_magic_is_readable_over_mmio() {
        let mut dev = copier_device(2);
        let magic = dev.mmio_read(mmio::VCU_BASE + vcu_reg::MAGIC);
        assert_eq!(magic, vcu_reg::MAGIC_VALUE);
        assert_eq!(dev.mmio_read(mmio::VCU_BASE + vcu_reg::NUM_ACCELS), 2);
    }

    #[test]
    fn accel_mmio_write_and_read() {
        let mut dev = copier_device(2);
        let base = mmio::accel_mmio_base(1);
        dev.mmio_write(base + StreamCopier::REG_SRC, 0x1000);
        dev.run(200);
        assert_eq!(dev.mmio_read(base + StreamCopier::REG_SRC), 0x1000);
        // Accelerator 0 remains untouched.
        assert_eq!(dev.mmio_read(mmio::accel_mmio_base(0) + StreamCopier::REG_SRC), 0);
    }

    #[test]
    fn copier_copies_through_full_stack() {
        let mut dev = copier_device(2);
        // Source data at HPA 0x10000 (identity-mapped IOVA, offset 0).
        for i in 0..8u64 {
            let mut line = [0u8; 64];
            line[0] = i as u8 + 1;
            dev.host_mut().memory_mut().write_line(Hpa::new(0x10000 + i * 64), &line);
        }
        let base = mmio::accel_mmio_base(0);
        dev.mmio_write(base + StreamCopier::REG_SRC, 0x10000);
        dev.mmio_write(base + StreamCopier::REG_DST, 0x20000);
        dev.mmio_write(base + StreamCopier::REG_LINES, 8);
        dev.mmio_write(base + StreamCopier::REG_XOR, 0xFF);
        dev.mmio_write(base + accel_reg::CTRL_CMD, accel_reg::CMD_START);
        assert!(dev.run_until(100_000, |d| d.accel(0).is_done()));
        for i in 0..8u64 {
            let line = dev.host().memory().read_line(Hpa::new(0x20000 + i * 64));
            assert_eq!(line[0], (i as u8 + 1) ^ 0xFF, "line {i}");
            assert_eq!(line[1], 0xFF);
        }
    }

    #[test]
    fn offset_table_shifts_dmas() {
        let mut dev = copier_device(2);
        // Slice accel 0 by +2 MB: GVA 0 → IOVA 2 MB → HPA 2 MB.
        dev.mmio_write(
            mmio::VCU_BASE + vcu_reg::OFFSET_TABLE,
            PageSize::Huge.bytes(),
        );
        dev.run(100);
        // Copier reads GVA 0 region; data must come from HPA 2 MB.
        let src_hpa = Hpa::new(PageSize::Huge.bytes());
        let mut line = [0u8; 64];
        line[0] = 0x5A;
        dev.host_mut().memory_mut().write_line(src_hpa, &line);
        let base = mmio::accel_mmio_base(0);
        dev.mmio_write(base + StreamCopier::REG_SRC, 0);
        dev.mmio_write(base + StreamCopier::REG_DST, 0x40000);
        dev.mmio_write(base + StreamCopier::REG_LINES, 1);
        dev.mmio_write(base + accel_reg::CTRL_CMD, accel_reg::CMD_START);
        assert!(dev.run_until(100_000, |d| d.accel(0).is_done()));
        // Destination also shifted by the slice offset.
        let out = dev
            .host()
            .memory()
            .read_line(Hpa::new(PageSize::Huge.bytes() + 0x40000));
        assert_eq!(out[0], 0x5A);
    }

    #[test]
    fn misrouted_response_is_discarded() {
        let mut dev = copier_device(2);
        dev.inject_down_packet(DownPacket::DmaReadResp {
            data: Box::new([0xEE; 64]),
            dst: optimus_cci::packet::AccelId(1),
            tag: Tag(999),
        });
        dev.run(10);
        // Port 1 had no such outstanding tag: discarded as stale.
        assert_eq!(dev.port(1).stale_discarded(), 1);
        assert_eq!(dev.port(1).byte_counts(), (0, 0));
        // Regression (isolation spec harness): the stale discard must
        // surface in the device's integrity counters exactly once — it
        // used to live only in the port-local counter, so
        // `HvStats.discarded_dma` undercounted stray traffic.
        let integrity = PlatformDevice::integrity(&dev);
        assert_eq!(integrity.discarded_dma, 1);
        assert_eq!(integrity.dropped_packets, 1);
    }

    #[test]
    fn stale_discards_count_exactly_once_under_batched_bursts() {
        // Same stray packet, but delivered mid-burst with batched stepping
        // (the PR 7 free-running configuration): the accounting in
        // `dispatch_down` must not double- or under-count.
        let mut dev = copier_device(2);
        dev.set_batch_step(64);
        for k in 0..3u32 {
            dev.inject_down_packet(DownPacket::DmaReadResp {
                data: Box::new([0xEE; 64]),
                dst: optimus_cci::packet::AccelId(1),
                tag: Tag(900 + k),
            });
        }
        dev.run(1000);
        assert_eq!(dev.port(1).stale_discarded(), 3);
        let integrity = PlatformDevice::integrity(&dev);
        assert_eq!(integrity.discarded_dma, 3);
        assert_eq!(integrity.dropped_packets, 3);
    }

    #[test]
    fn out_of_window_dma_is_master_aborted_and_counted() {
        // Program accel 0's slice window, then point the copier's source
        // past the end of the window: the auditor must discard the DMA
        // (not let it escape into the next slice) and the device must
        // retire the request with a master-abort so the port drains.
        let mut dev = copier_device(2);
        let win = PageSize::Huge.bytes() * 4; // 8 MB window at IOVA 0
        dev.mmio_write(mmio::VCU_BASE + vcu_reg::WINDOW_BASE_TABLE, 0);
        dev.mmio_write(mmio::VCU_BASE + vcu_reg::WINDOW_LEN_TABLE, win);
        dev.run(100);
        let base = mmio::accel_mmio_base(0);
        dev.mmio_write(base + StreamCopier::REG_SRC, win); // first out-of-window line
        dev.mmio_write(base + StreamCopier::REG_DST, win + 0x1000);
        dev.mmio_write(base + StreamCopier::REG_LINES, 4);
        dev.mmio_write(base + accel_reg::CTRL_CMD, accel_reg::CMD_START);
        dev.run(100_000);
        let (dma_discards, _) = dev.auditor(0).discard_counts();
        assert!(dma_discards >= 4, "wild reads discarded, got {dma_discards}");
        assert!(dev.port(0).is_drained(), "aborted requests must retire, not dangle");
        let integrity = PlatformDevice::integrity(&dev);
        assert_eq!(integrity.discarded_dma, dma_discards);
        // Nothing was written past the window.
        let out = dev.host().memory().read_line(Hpa::new(win + 0x1000));
        assert_eq!(out, [0u8; 64]);
    }

    #[test]
    fn reset_clears_accelerator_and_port() {
        let mut dev = copier_device(2);
        let base = mmio::accel_mmio_base(0);
        dev.mmio_write(base + StreamCopier::REG_SRC, 0x10000);
        dev.mmio_write(base + StreamCopier::REG_LINES, 1000);
        dev.mmio_write(base + accel_reg::CTRL_CMD, accel_reg::CMD_START);
        dev.run(2000); // mid-flight
        dev.mmio_write(mmio::VCU_BASE + vcu_reg::RESET_TABLE, 1);
        dev.run(5000);
        assert_eq!(dev.mmio_read(base + StreamCopier::REG_LINES), 0);
        assert!(!dev.accel(0).is_done());
        // Late responses for pre-reset requests were discarded, not delivered.
        assert!(dev.port_mut(0).pop_response().is_none());
    }

    #[test]
    fn unclaimed_mmio_read_master_aborts() {
        let mut dev = copier_device(1);
        let value = dev.mmio_read(mmio::accel_mmio_base(5) + 0x40);
        assert_eq!(value, u64::MAX);
        assert!(dev.dropped_packets() > 0);
    }

    #[test]
    fn empty_accelerator_list_is_a_typed_error() {
        let err = FpgaDevice::try_new_monitored(Vec::new(), 2, SelectorPolicy::Auto)
            .expect_err("empty list must fail");
        assert_eq!(err, FabricError::NoAccelerators);
    }

    #[test]
    fn integrity_counters_surface_shell_drops() {
        let mut dev = copier_device(1);
        dev.mmio_read(mmio::accel_mmio_base(5) + 0x40); // master-abort
        let integrity = PlatformDevice::integrity(&dev);
        assert!(integrity.dropped_packets > 0);
        assert_eq!(integrity.discarded_dma, 0);
    }

    #[test]
    fn shell_registers_are_scratch() {
        let mut dev = copier_device(1);
        dev.mmio_write(0x100, 77);
        dev.run(100);
        assert_eq!(dev.mmio_read(0x100), 77);
    }
}
