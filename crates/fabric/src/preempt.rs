//! Reusable implementation of the preemption interface's data movement.
//!
//! OPTIMUS leaves *what* to save to the accelerator designer (§4.2) — a
//! linked-list walker saves one pointer, a hash accelerator saves its
//! digest state — but the mechanics are common to every design: after the
//! hypervisor's `CMD_PREEMPT`, drain in-flight transactions, stream the
//! serialized state to the guest-provided memory buffer as ordinary DMA
//! writes, and raise `Saved`; on `CMD_RESUME`, stream it back and continue.
//!
//! [`PreemptEngine`] implements exactly that streaming, so each benchmark
//! only supplies `serialize`/`deserialize` of its architectural state.

use crate::accelerator::AccelPort;
use optimus_mem::addr::Gva;
use optimus_sim::hashing::FastMap;
use optimus_sim::time::Cycle;

/// Progress of an active save or restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PreemptProgress {
    /// Still streaming.
    InProgress,
    /// All state lines written and acknowledged.
    SaveDone,
    /// All state lines read back; the payload is the serialized state.
    RestoreDone(Vec<u8>),
    /// Engine idle.
    Idle,
}

#[derive(Debug)]
enum Mode {
    Idle,
    Saving {
        buffer: Vec<u8>,
        issued: usize,
        acked: usize,
    },
    /// First restore stage: fetch line 0, which carries the length header.
    RestoringHeader {
        issued: bool,
    },
    Restoring {
        buffer: Vec<u8>,
        payload_len: usize,
        issued: usize,
        received: usize,
        /// Tag → line index of each outstanding line read, so responses
        /// that the channel fabric reorders still land in their own line
        /// slot. A map, not a scan: multi-megabyte states stream tens of
        /// thousands of lines, and a per-response linear search turns the
        /// restore quadratic.
        tags: FastMap<u32, usize>,
    },
}

/// Streams serialized accelerator state to/from the state buffer.
#[derive(Debug)]
pub struct PreemptEngine {
    state_addr: Gva,
    mode: Mode,
}

impl Default for PreemptEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl PreemptEngine {
    /// Creates an idle engine.
    pub fn new() -> Self {
        Self {
            state_addr: Gva::new(0),
            mode: Mode::Idle,
        }
    }

    /// Sets the guest virtual address of the state buffer (the
    /// `CTRL_STATE_ADDR` register).
    pub fn set_state_addr(&mut self, gva: Gva) {
        self.state_addr = gva;
    }

    /// The configured state buffer address.
    pub fn state_addr(&self) -> Gva {
        self.state_addr
    }

    /// Whether a save or restore is in flight.
    pub fn is_active(&self) -> bool {
        !matches!(self.mode, Mode::Idle)
    }

    /// Whether the engine would issue a request if the port allowed it.
    ///
    /// Fast-forward hint: while active but not wanting to issue, the engine
    /// is purely waiting on responses, so a `step` with an empty response
    /// queue is a no-op.
    pub fn wants_issue(&self) -> bool {
        match &self.mode {
            Mode::Idle => false,
            Mode::Saving { buffer, issued, .. } => *issued < buffer.len() / 64,
            Mode::RestoringHeader { issued } => !*issued,
            Mode::Restoring { buffer, issued, .. } => *issued < buffer.len() / 64,
        }
    }

    /// Begins saving `state`. The blob is made self-describing (an 8-byte
    /// length header is prepended) so that a later resume — possibly after
    /// other virtual accelerators used this physical accelerator — can
    /// recover the exact length from memory alone.
    ///
    /// # Panics
    ///
    /// Panics if the engine is already active.
    pub fn begin_save(&mut self, state: Vec<u8>) {
        assert!(!self.is_active(), "preempt engine already active");
        let mut framed = Vec::with_capacity(8 + state.len());
        framed.extend_from_slice(&(state.len() as u64).to_le_bytes());
        framed.extend_from_slice(&state);
        while framed.len() % 64 != 0 {
            framed.push(0);
        }
        self.mode = Mode::Saving {
            buffer: framed,
            issued: 0,
            acked: 0,
        };
    }

    /// Begins restoring state from the buffer. The length is read back from
    /// the blob's own header.
    ///
    /// # Panics
    ///
    /// Panics if the engine is already active.
    pub fn begin_restore(&mut self) {
        assert!(!self.is_active(), "preempt engine already active");
        self.mode = Mode::RestoringHeader { issued: false };
    }

    /// Advances the streaming by one accelerator cycle.
    ///
    /// The caller must route *all* port responses here while the engine is
    /// active (the accelerator is drained of application traffic first, so
    /// there is no ambiguity).
    pub fn step(&mut self, now: Cycle, port: &mut AccelPort) -> PreemptProgress {
        match &mut self.mode {
            Mode::Idle => PreemptProgress::Idle,
            Mode::Saving {
                buffer,
                issued,
                acked,
            } => {
                let total_lines = buffer.len() / 64;
                // Consume write acknowledgments.
                while let Some(resp) = port.pop_response() {
                    debug_assert!(resp.data.is_none(), "unexpected read during save");
                    *acked += 1;
                }
                // Issue further write lines.
                while *issued < total_lines && port.can_issue() {
                    let mut line = [0u8; 64];
                    line.copy_from_slice(&buffer[*issued * 64..*issued * 64 + 64]);
                    port.write(
                        Gva::new(self.state_addr.raw() + (*issued as u64) * 64),
                        Box::new(line),
                        now,
                    );
                    *issued += 1;
                }
                if *acked == total_lines {
                    self.mode = Mode::Idle;
                    PreemptProgress::SaveDone
                } else {
                    PreemptProgress::InProgress
                }
            }
            Mode::RestoringHeader { issued } => {
                if let Some(resp) = port.pop_response() {
                    let data = resp.data.expect("restore expects read data");
                    let payload_len =
                        u64::from_le_bytes(data[0..8].try_into().unwrap()) as usize;
                    let total = (8 + payload_len).div_ceil(64) * 64;
                    let mut buffer = vec![0u8; total];
                    buffer[..64].copy_from_slice(&data[..]);
                    if total == 64 {
                        let out = buffer[8..8 + payload_len].to_vec();
                        self.mode = Mode::Idle;
                        return PreemptProgress::RestoreDone(out);
                    }
                    self.mode = Mode::Restoring {
                        buffer,
                        payload_len,
                        issued: 1,
                        received: 1,
                        tags: FastMap::default(),
                    };
                    return PreemptProgress::InProgress;
                }
                if !*issued && port.can_issue() {
                    port.read(self.state_addr, now);
                    *issued = true;
                }
                PreemptProgress::InProgress
            }
            Mode::Restoring {
                buffer,
                payload_len,
                issued,
                received,
                tags,
            } => {
                let total_lines = buffer.len() / 64;
                while let Some(resp) = port.pop_response() {
                    let data = resp.data.expect("restore expects read data");
                    // Lines issue in order, but reads striped across
                    // channels can complete out of order — place each
                    // response by its tag, not by arrival order.
                    let line_idx = tags
                        .remove(&resp.tag.0)
                        .expect("restore response tag matches an issued line read");
                    buffer[line_idx * 64..line_idx * 64 + 64].copy_from_slice(&data[..]);
                    *received += 1;
                }
                while *issued < total_lines && port.can_issue() {
                    let tag = port.read(
                        Gva::new(self.state_addr.raw() + (*issued as u64) * 64),
                        now,
                    );
                    tags.insert(tag.0, *issued);
                    *issued += 1;
                }
                if *received == total_lines {
                    let payload_len = *payload_len;
                    let out = buffer[8..8 + payload_len].to_vec();
                    self.mode = Mode::Idle;
                    PreemptProgress::RestoreDone(out)
                } else {
                    PreemptProgress::InProgress
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives the engine against a loopback port that acknowledges
    /// immediately in order.
    fn loopback(engine: &mut PreemptEngine, port: &mut AccelPort, store: &mut Vec<u8>) -> PreemptProgress {
        for now in 0..10_000u64 {
            let progress = engine.step(now, port);
            match progress {
                PreemptProgress::InProgress => {}
                done => return done,
            }
            // Service pending requests like a 1-cycle memory.
            while let Some(req) = port.take_pending() {
                let base = req.gva.raw() as usize;
                match req.write {
                    Some(data) => {
                        if store.len() < base + 64 {
                            store.resize(base + 64, 0);
                        }
                        store[base..base + 64].copy_from_slice(&data[..]);
                        port.deliver(req.tag, None, now);
                    }
                    None => {
                        let mut line = [0u8; 64];
                        line.copy_from_slice(&store[base..base + 64]);
                        port.deliver(req.tag, Some(Box::new(line)), now);
                    }
                }
            }
        }
        panic!("engine never completed");
    }

    #[test]
    fn save_then_restore_round_trips() {
        let mut engine = PreemptEngine::new();
        engine.set_state_addr(Gva::new(0x100 * 64));
        let state: Vec<u8> = (0..200u32).map(|i| i as u8).collect();
        let mut port = AccelPort::new();
        let mut store = Vec::new();

        engine.begin_save(state.clone());
        assert!(engine.is_active());
        assert_eq!(
            loopback(&mut engine, &mut port, &mut store),
            PreemptProgress::SaveDone
        );
        assert!(!engine.is_active());

        engine.begin_restore();
        let got = match loopback(&mut engine, &mut port, &mut store) {
            PreemptProgress::RestoreDone(v) => v,
            other => panic!("{other:?}"),
        };
        assert_eq!(&got[..state.len()], &state[..]);
    }

    #[test]
    fn empty_state_still_writes_the_header_line() {
        let mut engine = PreemptEngine::new();
        let mut port = AccelPort::new();
        let mut store = Vec::new();
        engine.begin_save(Vec::new());
        assert_eq!(
            loopback(&mut engine, &mut port, &mut store),
            PreemptProgress::SaveDone
        );
        engine.begin_restore();
        match loopback(&mut engine, &mut port, &mut store) {
            PreemptProgress::RestoreDone(v) => assert!(v.is_empty()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn idle_engine_reports_idle() {
        let mut engine = PreemptEngine::new();
        let mut port = AccelPort::new();
        assert_eq!(engine.step(0, &mut port), PreemptProgress::Idle);
    }

    #[test]
    #[should_panic(expected = "already active")]
    fn double_begin_panics() {
        let mut engine = PreemptEngine::new();
        engine.begin_save(vec![0; 64]);
        engine.begin_restore();
    }
}
