//! The multiplexer tree.
//!
//! The tree propagates accelerator request packets up to the shell. Each
//! node arbitrates among its children with round-robin — the mechanism
//! behind the real-time bandwidth fairness of Table 3 — and, because of the
//! routing complexity the paper measures in §6.3, forwards at most one
//! packet every two fabric cycles. Each level adds ≈ 33 ns of latency
//! round-trip (≈ 17.5 ns up, modeled as 7 cycles, and 15 ns down).
//!
//! The arrangement is configurable (arity × leaves), exactly as the paper
//! states: OPTIMUS defaults to a three-level binary tree for eight
//! accelerators because wider nodes fail 400 MHz timing (see
//! [`crate::synthesis`]).

use optimus_cci::packet::UpPacket;
use optimus_cci::params::{MONITOR_INJECT_INTERVAL, TREE_LEVEL_UP_CYCLES, TREE_QUEUE_CAPACITY};
use optimus_sim::metrics;
use optimus_sim::queue::TimedQueue;
use optimus_sim::time::Cycle;
use optimus_sim::trace::{self, Track};

/// Shape of the multiplexer tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeConfig {
    /// Number of accelerator leaves.
    pub leaves: usize,
    /// Children per node (2 = binary, the OPTIMUS default).
    pub arity: usize,
}

impl TreeConfig {
    /// The paper's default: binary tree over 8 accelerators.
    pub fn default_eight() -> Self {
        Self {
            leaves: 8,
            arity: 2,
        }
    }

    /// Number of levels in the tree (= tree depth).
    pub fn levels(&self) -> u32 {
        let mut count = self.leaves.max(1);
        let mut levels = 0;
        while count > 1 {
            count = count.div_ceil(self.arity);
            levels += 1;
        }
        levels.max(1)
    }
}

#[derive(Debug)]
struct MuxNode {
    /// Input buffers, one per child (accelerator or lower node).
    inputs: Vec<TimedQueue<UpPacket>>,
    /// Parent node index and child-slot, or `None` for the root.
    parent: Option<(usize, usize)>,
    rr: usize,
    next_slot: Cycle,
    /// Packets across this node's inputs. A node with zero queued packets
    /// can neither grant nor stall, so [`MuxTree::step`] and
    /// [`MuxTree::next_event`] skip it with one compare — at low tree
    /// occupancy (a latency-bound pointer chase holds one packet in the
    /// whole fabric) that turns the per-cycle all-nodes scan into a
    /// single-node visit.
    occ: usize,
}

/// The multiplexer tree with round-robin arbitration at every node.
#[derive(Debug)]
pub struct MuxTree {
    config: TreeConfig,
    nodes: Vec<MuxNode>,
    /// Per-accelerator attachment: (node index, input slot).
    leaf_slots: Vec<(usize, usize)>,
    root_out: TimedQueue<UpPacket>,
    forwarded: u64,
    /// Per-source-port root clears — deterministic state the isolation
    /// watchdog reads for starvation detection and Jain's fairness index
    /// (never the metrics plane, which may be off or thread-split).
    forwarded_per_src: Vec<u64>,
    /// Packets currently anywhere in the tree (node inputs + root buffer).
    /// Lets [`step`](Self::step) skip the whole node scan when the tree is
    /// empty — the common case on a compute-bound device — which is a pure
    /// no-op (no queue pops, no `rr`/`next_slot` writes, no ready inputs
    /// to stall on).
    occupancy: usize,
}

impl MuxTree {
    /// Builds a tree for `config`.
    ///
    /// # Panics
    ///
    /// Panics if `leaves` is zero or `arity < 2`.
    pub fn new(config: TreeConfig) -> Self {
        assert!(config.leaves > 0, "tree needs at least one leaf");
        assert!(config.arity >= 2, "mux arity must be at least 2");
        let mut nodes: Vec<MuxNode> = Vec::new();
        let mut leaf_slots = Vec::with_capacity(config.leaves);

        // Build level by level. `current` holds, for each surviving stream,
        // either a leaf (accel) or a node output to attach upward.
        #[derive(Clone, Copy)]
        enum Stream {
            Accel(usize),
            Node(usize),
        }
        let mut current: Vec<Stream> = (0..config.leaves).map(Stream::Accel).collect();
        while current.len() > 1 {
            let mut next = Vec::new();
            for group in current.chunks(config.arity) {
                let node_idx = nodes.len();
                nodes.push(MuxNode {
                    inputs: (0..group.len()).map(|_| TimedQueue::new()).collect(),
                    parent: None,
                    rr: 0,
                    next_slot: 0,
                    occ: 0,
                });
                for (slot, stream) in group.iter().enumerate() {
                    match stream {
                        Stream::Accel(a) => {
                            leaf_slots.push((node_idx, slot));
                            // Accelerators only appear at the first level
                            // and chunks scan in order, so the slot list is
                            // indexed by accelerator number.
                            debug_assert_eq!(leaf_slots.len() - 1, *a);
                        }
                        Stream::Node(n) => nodes[*n].parent = Some((node_idx, slot)),
                    }
                }
                next.push(Stream::Node(node_idx));
            }
            current = next;
        }
        if let Stream::Accel(_) = current[0] {
            // Single leaf: make a 1-input pass node so the interface is
            // uniform (still rate-limited like hardware).
            nodes.push(MuxNode {
                inputs: vec![TimedQueue::new()],
                parent: None,
                rr: 0,
                next_slot: 0,
                occ: 0,
            });
            leaf_slots.push((0, 0));
        }
        Self {
            config,
            nodes,
            leaf_slots,
            root_out: TimedQueue::new(),
            forwarded: 0,
            forwarded_per_src: vec![0; config.leaves],
            occupancy: 0,
        }
    }

    /// The tree's configuration.
    pub fn config(&self) -> TreeConfig {
        self.config
    }

    /// Number of internal mux nodes (for the resource model).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Whether accelerator `accel`'s leaf buffer can accept a packet.
    pub fn can_accept(&self, accel: usize) -> bool {
        let (node, slot) = self.leaf_slots[accel];
        self.nodes[node].inputs[slot].len() < TREE_QUEUE_CAPACITY
    }

    /// Injects a packet from accelerator `accel`'s auditor.
    ///
    /// # Panics
    ///
    /// Panics if the leaf buffer is full — callers must check
    /// [`can_accept`](Self::can_accept).
    pub fn inject(&mut self, accel: usize, pkt: UpPacket, now: Cycle) {
        assert!(self.can_accept(accel), "leaf buffer overflow");
        let (node, slot) = self.leaf_slots[accel];
        self.nodes[node].inputs[slot].push(pkt, now);
        self.nodes[node].occ += 1;
        self.occupancy += 1;
    }

    /// One fabric cycle of arbitration at every node.
    pub fn step(&mut self, now: Cycle) {
        // Empty tree: arbitration is a pure no-op, skip the node scan.
        if self.occupancy == 0 {
            return;
        }
        // Arbitrate nodes in construction order (leaves-first), so a packet
        // moves at most one level per cycle.
        for idx in 0..self.nodes.len() {
            // An empty node can neither grant nor stall: skip it before
            // touching its queues (most nodes are empty at low occupancy).
            if self.nodes[idx].occ == 0 || now < self.nodes[idx].next_slot {
                continue;
            }
            // Check output capacity first.
            let parent = self.nodes[idx].parent;
            let output_full = match parent {
                Some((p, s)) => self.nodes[p].inputs[s].len() >= TREE_QUEUE_CAPACITY,
                None => self.root_out.len() >= TREE_QUEUE_CAPACITY,
            };
            if output_full {
                // Backpressure stall: a packet is ready but the level
                // above has no room.
                let ready_input = self.nodes[idx]
                    .inputs
                    .iter()
                    .any(|q| q.peek_ready(now).is_some());
                metrics::inc(metrics::FABRIC_MUX_STALLS, idx as u32, ready_input as u64);
                if trace::enabled() && ready_input {
                    let t = Track::mux_node(idx);
                    trace::instant(t, "mux_stall", now, &[]);
                    trace::count(t, "stalls", 1);
                }
                continue;
            }
            // Round-robin scan for a ready input (manual wrap: `%` is a
            // hardware divide on a runtime divisor, once per probe).
            let n_inputs = self.nodes[idx].inputs.len();
            let mut i = self.nodes[idx].rr;
            let mut taken = None;
            for _ in 0..n_inputs {
                if let Some(pkt) = self.nodes[idx].inputs[i].pop_ready(now) {
                    taken = Some((i, pkt));
                    break;
                }
                i += 1;
                if i == n_inputs {
                    i = 0;
                }
            }
            if let Some((i, pkt)) = taken {
                metrics::inc(metrics::FABRIC_MUX_GRANTS, idx as u32, 1);
                // Occupancy the winning input had when arbitration ran
                // (the popped packet plus whatever is still queued).
                metrics::observe(
                    metrics::FABRIC_MUX_QUEUE_DEPTH,
                    idx as u32,
                    self.nodes[idx].inputs[i].len() as u64 + 1,
                );
                if trace::enabled() {
                    let t = Track::mux_node(idx);
                    trace::instant(t, "mux_grant", now, &[("input", i as u64)]);
                    trace::count(t, "grants", 1);
                }
                self.nodes[idx].rr = if i + 1 == n_inputs { 0 } else { i + 1 };
                self.nodes[idx].next_slot = now + MONITOR_INJECT_INTERVAL;
                self.nodes[idx].occ -= 1;
                let ready = now + TREE_LEVEL_UP_CYCLES;
                match parent {
                    Some((p, s)) => {
                        self.nodes[p].inputs[s].push(pkt, ready);
                        self.nodes[p].occ += 1;
                    }
                    None => {
                        if let Some(src) = pkt.src() {
                            let port = src.0 as usize;
                            if port < self.forwarded_per_src.len() {
                                self.forwarded_per_src[port] += 1;
                            }
                            metrics::inc(metrics::FABRIC_PORT_FORWARDED, src.0 as u32, 1);
                        }
                        self.root_out.push(pkt, ready);
                        self.forwarded += 1;
                    }
                }
            }
        }
    }

    /// Pops a packet that has cleared the root (shell side, ≤ 1/cycle).
    pub fn pop_root(&mut self, now: Cycle) -> Option<UpPacket> {
        let pkt = self.root_out.pop_ready(now);
        if pkt.is_some() {
            self.occupancy -= 1;
        }
        pkt
    }

    /// Earliest future cycle at which stepping the tree can do anything:
    /// some node can arbitrate a ready input, or a packet clears the root.
    /// `None` means the tree is completely empty.
    ///
    /// Exact during an idle gap: with no pops and no injections, every
    /// node's `next_slot` and queue contents are frozen, so the horizon
    /// cannot move earlier. Output-full stalls resolve only via a parent
    /// pop, which the parent's own term (or the root pop) covers.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if self.occupancy == 0 {
            return None;
        }
        let mut horizon: Option<Cycle> = self.root_out.next_ready();
        for node in &self.nodes {
            if node.occ == 0 {
                continue;
            }
            let earliest_input = node
                .inputs
                .iter()
                .filter_map(TimedQueue::next_ready)
                .min();
            if let Some(input_at) = earliest_input {
                let at = input_at.max(node.next_slot);
                horizon = Some(horizon.map_or(at, |h| h.min(at)));
            }
        }
        horizon.map(|h| h.max(now))
    }

    /// Discards any queued packets belonging to accelerator `accel`
    /// anywhere in the tree (used on accelerator reset). Returns the number
    /// of packets flushed.
    pub fn flush_accel(&mut self, accel: usize) -> usize {
        use optimus_cci::packet::AccelId;
        let target = AccelId(accel as u8);
        let mut flushed = 0;
        for node in &mut self.nodes {
            let node_before: usize = node.inputs.iter().map(TimedQueue::len).sum();
            for input in &mut node.inputs {
                let before = input.len();
                let kept: Vec<UpPacket> = {
                    let mut kept = Vec::new();
                    while let Some(p) = input.pop_ready(Cycle::MAX) {
                        if p.src() != Some(target) {
                            kept.push(p);
                        }
                    }
                    kept
                };
                flushed += before - kept.len();
                input.clear();
                for p in kept {
                    input.push(p, 0);
                }
            }
            let node_after: usize = node.inputs.iter().map(TimedQueue::len).sum();
            node.occ -= node_before - node_after;
        }
        self.occupancy -= flushed;
        flushed
    }

    /// Total packets that have cleared the root.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    /// Packets from accelerator `accel` that have cleared the root.
    ///
    /// Deterministic device-owned state (not the metrics plane): the
    /// isolation watchdog diffs this across its window to detect tenant
    /// starvation, so it must read identically with metrics on or off.
    pub fn forwarded_by(&self, accel: usize) -> u64 {
        self.forwarded_per_src.get(accel).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimus_cci::packet::{AccelId, Tag};
    use optimus_mem::addr::Iova;

    fn read_pkt(accel: u8, tag: u32) -> UpPacket {
        UpPacket::DmaRead {
            iova: Iova::new(0),
            src: AccelId(accel),
            tag: Tag(tag),
        }
    }

    fn drain(tree: &mut MuxTree, until: Cycle) -> Vec<(Cycle, UpPacket)> {
        let mut out = Vec::new();
        for now in 0..until {
            tree.step(now);
            if let Some(p) = tree.pop_root(now) {
                out.push((now, p));
            }
        }
        out
    }

    #[test]
    fn binary_tree_for_eight_has_seven_nodes_three_levels() {
        let cfg = TreeConfig::default_eight();
        assert_eq!(cfg.levels(), 3);
        let tree = MuxTree::new(cfg);
        assert_eq!(tree.node_count(), 7);
    }

    #[test]
    fn single_packet_latency_is_levels_times_hop() {
        let mut tree = MuxTree::new(TreeConfig::default_eight());
        tree.inject(0, read_pkt(0, 1), 0);
        let got = drain(&mut tree, 200);
        assert_eq!(got.len(), 1);
        // 3 hops: arbitrated at cycle t, visible at t + 7 per level; total
        // ≥ 21 cycles and ≤ ~27 with arbitration slots.
        let at = got[0].0;
        assert!((21..=30).contains(&at), "packet cleared root at {at}");
    }

    #[test]
    fn node_rate_is_one_packet_per_two_cycles() {
        let mut tree = MuxTree::new(TreeConfig::default_eight());
        // Keep accel 0's leaf saturated.
        let mut injected = 0u32;
        let mut received = 0;
        let mut first = None;
        let mut last = 0;
        for now in 0..2000 {
            if tree.can_accept(0) {
                tree.inject(0, read_pkt(0, injected), now);
                injected += 1;
            }
            tree.step(now);
            if tree.pop_root(now).is_some() {
                received += 1;
                first.get_or_insert(now);
                last = now;
            }
        }
        let span = (last - first.unwrap()) as f64;
        let rate = (received - 1) as f64 / span;
        assert!(
            (rate - 0.5).abs() < 0.02,
            "root rate {rate} packets/cycle (expected 0.5)"
        );
    }

    #[test]
    fn round_robin_is_fair_under_saturation() {
        let mut tree = MuxTree::new(TreeConfig::default_eight());
        let mut counts = [0u32; 8];
        let mut tags = [0u32; 8];
        for now in 0..4000 {
            for a in 0..8 {
                if tree.can_accept(a) {
                    tree.inject(a, read_pkt(a as u8, tags[a]), now);
                    tags[a] += 1;
                }
            }
            tree.step(now);
            if let Some(p) = tree.pop_root(now) {
                if let Some(src) = p.src() {
                    counts[src.0 as usize] += 1;
                }
            }
        }
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(min > 0.0);
        assert!(
            (max - min) / max < 0.02,
            "unfair split {counts:?}"
        );
    }

    #[test]
    fn two_saturating_leaves_split_parent_evenly() {
        // Accels 0 and 1 share a level-1 node (Table 4's MemBench+MD5 case).
        let mut tree = MuxTree::new(TreeConfig::default_eight());
        let mut counts = [0u32; 2];
        let mut tags = [0u32; 2];
        for now in 0..4000 {
            for a in 0..2 {
                if tree.can_accept(a) {
                    tree.inject(a, read_pkt(a as u8, tags[a]), now);
                    tags[a] += 1;
                }
            }
            tree.step(now);
            if let Some(p) = tree.pop_root(now) {
                counts[p.src().unwrap().0 as usize] += 1;
            }
        }
        let total = counts[0] + counts[1];
        // Each ~0.25/cycle: half of the shared node's 0.5/cycle.
        let skew = (counts[0] as f64 - counts[1] as f64).abs() / total as f64;
        assert!(skew < 0.02, "split {counts:?}");
        let per_cycle = total as f64 / 4000.0;
        assert!((per_cycle - 0.5).abs() < 0.05, "aggregate {per_cycle}");
    }

    #[test]
    fn fifo_order_preserved_per_accelerator() {
        let mut tree = MuxTree::new(TreeConfig { leaves: 4, arity: 2 });
        for t in 0..6 {
            // Inject over time: capacity is 8.
            tree.inject(2, read_pkt(2, t), 0);
        }
        let got = drain(&mut tree, 500);
        let tags: Vec<u32> = got
            .iter()
            .filter_map(|(_, p)| match p {
                UpPacket::DmaRead { tag, .. } => Some(tag.0),
                _ => None,
            })
            .collect();
        assert_eq!(tags, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn flush_accel_removes_only_that_accel() {
        let mut tree = MuxTree::new(TreeConfig::default_eight());
        tree.inject(0, read_pkt(0, 1), 0);
        tree.inject(1, read_pkt(1, 2), 0);
        let flushed = tree.flush_accel(0);
        assert_eq!(flushed, 1);
        let got = drain(&mut tree, 200);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1.src(), Some(AccelId(1)));
    }

    #[test]
    fn single_leaf_tree_works() {
        let mut tree = MuxTree::new(TreeConfig { leaves: 1, arity: 2 });
        tree.inject(0, read_pkt(0, 0), 0);
        let got = drain(&mut tree, 100);
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn quad_tree_is_shallower() {
        let cfg = TreeConfig { leaves: 8, arity: 4 };
        assert_eq!(cfg.levels(), 2);
        let tree = MuxTree::new(cfg);
        assert_eq!(tree.node_count(), 3);
    }

    #[test]
    fn next_event_is_exact_while_idle() {
        let mut tree = MuxTree::new(TreeConfig::default_eight());
        assert_eq!(tree.next_event(0), None);
        tree.inject(0, read_pkt(0, 1), 5);
        // The horizon must never overshoot: stepping at the reported cycle
        // (and popping the root when ready) must reproduce the per-cycle
        // drain exactly.
        let mut now = 0;
        let mut cleared_at = None;
        while let Some(at) = tree.next_event(now) {
            now = at;
            tree.step(now);
            if tree.pop_root(now).is_some() {
                cleared_at = Some(now);
                break;
            }
            now += 1;
        }
        // Per-cycle reference.
        let mut reference = MuxTree::new(TreeConfig::default_eight());
        reference.inject(0, read_pkt(0, 1), 5);
        let ref_at = drain(&mut reference, 200)[0].0;
        assert_eq!(cleared_at, Some(ref_at));
    }

    #[test]
    fn backpressure_caps_leaf_queue() {
        let mut tree = MuxTree::new(TreeConfig::default_eight());
        let mut accepted = 0;
        for i in 0..100 {
            if tree.can_accept(0) {
                tree.inject(0, read_pkt(0, i), 0);
                accepted += 1;
            }
        }
        assert_eq!(accepted, TREE_QUEUE_CAPACITY);
    }
}
