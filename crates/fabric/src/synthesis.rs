//! Synthesizer model: replication scaling and timing closure.
//!
//! Two phenomena from the paper's synthesis runs are modeled here:
//!
//! 1. **Replication scaling (Table 2).** Placing eight instances of a
//!    benchmark does not cost exactly 8× one instance: complex designs pay
//!    routing overhead ("the synthesizer must consume extra resources in
//!    order to route signals... under timing requirements") while simple
//!    ones are optimized sublinearly (MemBench ≈ 6×; LinkedList's overall
//!    usage even *decreases*). Each accelerator's measured 8-instance
//!    factor is a toolchain input carried in its
//!    [`AccelMeta`](crate::accelerator::AccelMeta); [`replicated_usage`]
//!    interpolates it for other instance counts.
//!
//! 2. **Timing closure (§5).** A flat multiplexer with many children
//!    cannot close timing at the 400 MHz needed to fully utilize memory
//!    bandwidth — that is why OPTIMUS uses a binary *tree*, and why
//!    AmorphOS's flat mux runs at lower frequency. [`node_fmax_mhz`]
//!    models a mux node's achievable frequency as a function of its fan-in,
//!    and [`check_timing`] rejects configurations that miss 400 MHz.

use crate::accelerator::AccelMeta;
use crate::mux_tree::TreeConfig;
use crate::resources::{monitor_usage, shell_usage, Usage};

/// Target fabric frequency (MHz) required to fully utilize the memory
/// bandwidth (§5).
pub const TARGET_FABRIC_MHZ: f64 = 400.0;

/// Achievable frequency of one multiplexer node with `fan_in` children.
///
/// A 2:1 mux closes comfortably above 400 MHz; each extra input deepens
/// the arbitration/select logic and lengthens routing, costing ≈ 15 % of
/// the base frequency — so 4:1 lands below 400 MHz, matching the paper's
/// observation that wider arrangements failed synthesis.
pub fn node_fmax_mhz(fan_in: usize) -> f64 {
    assert!(fan_in >= 1);
    500.0 / (1.0 + 0.15 * (fan_in.saturating_sub(2)) as f64)
}

/// A timing-closure failure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingViolation {
    /// The widest node's fan-in.
    pub fan_in: usize,
    /// The frequency that node could achieve.
    pub achieved_mhz: f64,
    /// The frequency that was required.
    pub required_mhz: f64,
}

impl core::fmt::Display for TimingViolation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "a {}:1 multiplexer node closes at {:.0} MHz < required {:.0} MHz",
            self.fan_in, self.achieved_mhz, self.required_mhz
        )
    }
}

impl std::error::Error for TimingViolation {}

/// Checks that every node of `config` closes timing at `required_mhz`.
///
/// # Errors
///
/// Returns the violating fan-in if any node misses the target.
pub fn check_timing(config: TreeConfig, required_mhz: f64) -> Result<(), TimingViolation> {
    // The widest node in the tree has min(arity, leaves) children.
    let fan_in = config.arity.min(config.leaves.max(1));
    let achieved = node_fmax_mhz(fan_in);
    if achieved + 1e-9 < required_mhz {
        Err(TimingViolation {
            fan_in,
            achieved_mhz: achieved,
            required_mhz,
        })
    } else {
        Ok(())
    }
}

/// Resource usage of `count` instances of an accelerator.
///
/// Interpolates between the single-instance synthesis report and the
/// measured 8-instance replication factor: the per-added-instance overhead
/// (or credit) accrues linearly.
pub fn replicated_usage(meta: &AccelMeta, count: usize) -> Usage {
    assert!(count >= 1);
    let interp = |single_pct: f64, scale8: f64| -> f64 {
        // factor(1) = 1, factor(8) = scale8, linear in (count - 1).
        let factor = 1.0 + (scale8 - 1.0) * (count as f64 - 1.0) / 7.0;
        single_pct * factor
    };
    Usage::new(
        interp(meta.alm_pct, meta.alm_scale8),
        interp(meta.bram_pct, meta.bram_scale8),
    )
}

/// A full-device synthesis report: shell + monitor + replicated accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthesisReport {
    /// Shell usage.
    pub shell: Usage,
    /// Hardware monitor usage (zero in pass-through).
    pub monitor: Usage,
    /// Accelerator instances' combined usage.
    pub accels: Usage,
}

impl SynthesisReport {
    /// Total device utilization.
    pub fn total(&self) -> Usage {
        self.shell.plus(self.monitor).plus(self.accels)
    }
}

/// Synthesizes an OPTIMUS configuration: `count` instances of `meta`
/// behind a tree shaped by `config`.
///
/// # Errors
///
/// Fails with [`TimingViolation`] if the multiplexer arrangement cannot
/// close 400 MHz timing.
pub fn synthesize_monitored(
    meta: &AccelMeta,
    count: usize,
    config: TreeConfig,
) -> Result<SynthesisReport, TimingViolation> {
    check_timing(config, TARGET_FABRIC_MHZ)?;
    Ok(SynthesisReport {
        shell: shell_usage(),
        monitor: monitor_usage(config),
        accels: replicated_usage(meta, count),
    })
}

/// Synthesizes the pass-through baseline: one instance, no monitor.
pub fn synthesize_passthrough(meta: &AccelMeta) -> SynthesisReport {
    SynthesisReport {
        shell: shell_usage(),
        monitor: Usage::default(),
        accels: Usage::new(meta.alm_pct, meta.bram_pct),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(alm: f64, bram: f64, alm_scale8: f64, bram_scale8: f64) -> AccelMeta {
        AccelMeta {
            name: "T",
            description: "test",
            freq_mhz: 400,
            verilog_loc: 100,
            alm_pct: alm,
            bram_pct: bram,
            alm_scale8,
            bram_scale8,
            state_bytes: 64,
            demand: 0.1,
        }
    }

    #[test]
    fn binary_tree_closes_timing() {
        assert!(check_timing(TreeConfig::default_eight(), 400.0).is_ok());
    }

    #[test]
    fn flat_eight_mux_fails_timing() {
        let flat = TreeConfig { leaves: 8, arity: 8 };
        let err = check_timing(flat, 400.0).unwrap_err();
        assert_eq!(err.fan_in, 8);
        assert!(err.achieved_mhz < 400.0);
    }

    #[test]
    fn quad_tree_fails_timing() {
        // The paper: "more nodes per layer" arrangements could not be
        // synthesized without dropping below 400 MHz.
        assert!(check_timing(TreeConfig { leaves: 8, arity: 4 }, 400.0).is_err());
    }

    #[test]
    fn flat_mux_would_pass_at_amorphos_frequencies() {
        // AmorphOS-style flat muxing is viable at lower clocks.
        let flat = TreeConfig { leaves: 8, arity: 8 };
        assert!(check_timing(flat, 250.0).is_ok());
    }

    #[test]
    fn replication_interpolates_endpoints() {
        let m = meta(3.62, 2.82, 7.68, 8.16); // AES's measured factors
        let one = replicated_usage(&m, 1);
        assert!((one.alm_pct - 3.62).abs() < 1e-9);
        let eight = replicated_usage(&m, 8);
        assert!((eight.alm_pct - 3.62 * 7.68).abs() < 1e-9);
        assert!((eight.bram_pct - 2.82 * 8.16).abs() < 1e-9);
    }

    #[test]
    fn sublinear_replication_supported() {
        let m = meta(0.83, 0.0, 5.83, 8.0); // MemBench: ~6×
        let eight = replicated_usage(&m, 8);
        assert!(eight.alm_pct < 0.83 * 8.0);
    }

    #[test]
    fn negative_scaling_supported() {
        // LinkedList's overall usage decreases with replication.
        let m = meta(0.15, 0.0, -1.6, 8.0);
        let eight = replicated_usage(&m, 8);
        assert!(eight.alm_pct < 0.0);
    }

    #[test]
    fn full_report_totals() {
        let m = meta(2.0, 1.0, 8.0, 8.0);
        let rep = synthesize_monitored(&m, 8, TreeConfig::default_eight()).unwrap();
        let total = rep.total();
        assert!((total.alm_pct - (23.44 + rep.monitor.alm_pct + 16.0)).abs() < 1e-9);
        let pt = synthesize_passthrough(&m);
        assert_eq!(pt.monitor, Usage::default());
        assert!((pt.total().alm_pct - 25.44).abs() < 1e-9);
    }
}
