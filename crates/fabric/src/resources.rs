//! FPGA resource accounting (Table 2's raw material).
//!
//! The evaluation board is an Intel Arria 10 GX 1150: 427,200 adaptive
//! logic modules (ALMs) and 2,713 M20K block RAMs. Table 2 reports each
//! component's utilization as a percentage of those totals. The hardware
//! monitor's cost is *structural* — it is the sum of its parts, and this
//! module prices each part so that the default configuration (VCU + 7 mux
//! nodes + 8 auditors) lands at the paper's measured 6.16 % ALM / 0.48 %
//! BRAM.

use crate::mux_tree::TreeConfig;

/// Total ALMs on the Arria 10 GX 1150.
pub const TOTAL_ALMS: u64 = 427_200;
/// Total M20K BRAM blocks on the Arria 10 GX 1150.
pub const TOTAL_BRAMS: u64 = 2_713;

/// A resource quantity expressed as percentages of the device totals.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Usage {
    /// Percent of ALMs.
    pub alm_pct: f64,
    /// Percent of M20K blocks.
    pub bram_pct: f64,
}

impl Usage {
    /// Creates a usage record.
    pub fn new(alm_pct: f64, bram_pct: f64) -> Self {
        Self { alm_pct, bram_pct }
    }

    /// Component-wise sum.
    pub fn plus(self, other: Usage) -> Usage {
        Usage {
            alm_pct: self.alm_pct + other.alm_pct,
            bram_pct: self.bram_pct + other.bram_pct,
        }
    }

    /// Scales both quantities.
    pub fn times(self, k: f64) -> Usage {
        Usage {
            alm_pct: self.alm_pct * k,
            bram_pct: self.bram_pct * k,
        }
    }

    /// Absolute ALM count implied by the percentage.
    pub fn alms(&self) -> u64 {
        (self.alm_pct / 100.0 * TOTAL_ALMS as f64).round() as u64
    }

    /// Absolute M20K count implied by the percentage.
    pub fn brams(&self) -> u64 {
        (self.bram_pct / 100.0 * TOTAL_BRAMS as f64).round() as u64
    }
}

/// The HARP shell's fixed cost (Table 2, both configurations).
pub fn shell_usage() -> Usage {
    Usage::new(23.44, 6.57)
}

/// Per-component monitor costs, priced so the default configuration totals
/// the paper's measurement.
pub mod monitor_parts {
    use super::Usage;

    /// The virtualization control unit (tables + management decode).
    pub fn vcu() -> Usage {
        Usage::new(0.90, 0.16)
    }

    /// One multiplexer-tree node (round-robin arbiter + buffers).
    pub fn mux_node() -> Usage {
        Usage::new(0.45, 0.0)
    }

    /// One auditor (offset adder, ID tagger, range checker).
    pub fn auditor() -> Usage {
        Usage::new(0.26, 0.04)
    }
}

/// Total hardware-monitor cost for a tree configuration.
pub fn monitor_usage(config: TreeConfig) -> Usage {
    let nodes = crate::mux_tree::MuxTree::new(config).node_count() as f64;
    let auditors = config.leaves as f64;
    monitor_parts::vcu()
        .plus(monitor_parts::mux_node().times(nodes))
        .plus(monitor_parts::auditor().times(auditors))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_monitor_matches_table2() {
        let u = monitor_usage(TreeConfig::default_eight());
        // Paper: 6.16 % ALM, 0.48 % BRAM, "less than 7 % of resources".
        assert!((u.alm_pct - 6.16).abs() < 0.15, "ALM {}", u.alm_pct);
        assert!((u.bram_pct - 0.48).abs() < 0.05, "BRAM {}", u.bram_pct);
        assert!(u.alm_pct < 7.0);
    }

    #[test]
    fn monitor_scales_down_with_fewer_accelerators() {
        let big = monitor_usage(TreeConfig::default_eight());
        let small = monitor_usage(TreeConfig { leaves: 2, arity: 2 });
        assert!(small.alm_pct < big.alm_pct);
    }

    #[test]
    fn usage_arithmetic() {
        let a = Usage::new(1.0, 2.0);
        let b = Usage::new(0.5, 0.25);
        let sum = a.plus(b.times(2.0));
        assert!((sum.alm_pct - 2.0).abs() < 1e-12);
        assert!((sum.bram_pct - 2.5).abs() < 1e-12);
    }

    #[test]
    fn absolute_counts() {
        let u = Usage::new(10.0, 10.0);
        assert_eq!(u.alms(), 42_720);
        assert_eq!(u.brams(), 271);
    }

    #[test]
    fn shell_is_fixed() {
        let s = shell_usage();
        assert_eq!((s.alm_pct, s.bram_pct), (23.44, 6.57));
    }
}
