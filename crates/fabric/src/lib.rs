//! Simulated FPGA fabric: shell, hardware monitor, and accelerators.
//!
//! This crate is the FPGA half of the OPTIMUS hardware/software co-design.
//! It models the Arria 10 configuration of Fig. 3 in the paper:
//!
//! ```text
//!            ┌─────────────────────────── Shell ───────────────────────────┐
//!            │  ┌─────────────── Virtualization Control Unit ───────────┐  │
//!            │  │ offset table │ reset table │ config registers         │  │
//!            │  └──────────────────────┬────────────────────────────────┘  │
//!            │                 ┌───────┴────────┐                          │
//!            │                 │ Multiplexer    │  round-robin, 1 packet   │
//!            │                 │ tree (3 levels)│  per 2 cycles per node   │
//!            │                 └──┬──────────┬──┘                          │
//!            │   ┌─Auditor A──────┴─┐  ┌─────┴───Auditor B─┐               │
//!            │   │ GVA→IOVA offset  │  │ accel-ID tag check│               │
//!            │   └──────┬───────────┘  └───────┬───────────┘               │
//!            └──────────┼──────────────────────┼───────────────────────────┘
//!                 Accelerator A           Accelerator B
//! ```
//!
//! * [`accelerator`] — the [`Accelerator`](accelerator::Accelerator) trait
//!   every benchmark implements, its DMA port, and the control-register
//!   protocol of the preemption interface (§4.2);
//! * [`auditor`] — per-accelerator auditors: page-table-slicing address
//!   translation, accelerator-ID tagging, and discard of misrouted packets;
//! * [`mux_tree`] — the configurable multiplexer tree with round-robin
//!   arbitration (the source of the fairness results in Table 3);
//! * [`vcu`] — the virtualization control unit with its offset and reset
//!   tables;
//! * [`mmio`] — the MMIO address map (§5 "MMIO Slicing");
//! * [`platform`] — [`PlatformDevice`](platform::PlatformDevice), the
//!   device-facing surface the hypervisor programs against, plus
//!   [`DeviceId`](platform::DeviceId) addressing within a multi-device
//!   node and typed construction errors;
//! * [`device`] — [`FpgaDevice`](device::FpgaDevice), the cycle-stepped
//!   composition of all of the above plus the host side, in monitored
//!   (OPTIMUS) or pass-through (baseline) mode;
//! * [`resources`] / [`synthesis`] — the FPGA resource accounting and the
//!   synthesis model reproducing Table 2 and the timing-closure constraints
//!   that force a *tree* of multiplexers at 400 MHz.

pub mod accelerator;
pub mod auditor;
pub mod device;
pub mod mmio;
pub mod mux_tree;
pub mod platform;
pub mod preempt;
pub mod resources;
pub mod synthesis;
pub mod testing;
pub mod vcu;

pub use accelerator::{AccelMeta, AccelPort, AccelResponse, Accelerator, CtrlStatus};
pub use auditor::Auditor;
pub use device::{FabricMode, FpgaDevice};
pub use mux_tree::{MuxTree, TreeConfig};
pub use platform::{DeviceId, DeviceIntegrity, FabricError, PlatformDevice};
pub use vcu::Vcu;
