//! The device MMIO address map (§5, "MMIO Slicing").
//!
//! The MMIO space of an OPTIMUS-configured FPGA has three portions:
//!
//! 1. the region reserved for the HARP shell itself;
//! 2. a 4 KB page for the virtualization control unit's accelerator
//!    management interface;
//! 3. one 4 KB page per physical accelerator, with isolation enforced by
//!    that accelerator's auditor.
//!
//! Within each accelerator page, the low offsets hold the *control
//! registers* of the preemption interface (privileged — the hypervisor
//! traps and never forwards guest accesses to them directly), and offsets
//! from [`accel_reg::APP_BASE`] upward hold the accelerator's *application
//! registers*.

/// Size of the shell-reserved MMIO region.
pub const SHELL_SIZE: u64 = 0x1_0000;
/// Base of the VCU's 4 KB management page.
pub const VCU_BASE: u64 = SHELL_SIZE;
/// Size of the VCU page.
pub const VCU_SIZE: u64 = 0x1000;
/// Base of the per-accelerator MMIO pages.
pub const ACCEL_BASE: u64 = VCU_BASE + VCU_SIZE;
/// Size of each accelerator's MMIO page.
pub const ACCEL_PAGE: u64 = 0x1000;

/// The device-relative base address of accelerator `i`'s MMIO page.
pub fn accel_mmio_base(i: usize) -> u64 {
    ACCEL_BASE + i as u64 * ACCEL_PAGE
}

/// Decodes a device-relative address into the accelerator index and
/// page-relative offset it targets, if it falls in any accelerator page.
pub fn decode_accel_addr(addr: u64) -> Option<(usize, u64)> {
    if addr < ACCEL_BASE {
        return None;
    }
    let idx = ((addr - ACCEL_BASE) / ACCEL_PAGE) as usize;
    Some((idx, (addr - ACCEL_BASE) % ACCEL_PAGE))
}

/// Register offsets inside the VCU page.
pub mod vcu_reg {
    /// Offset-table entries: `OFFSET_TABLE + 8·i` holds accelerator `i`'s
    /// page-table-slicing offset (IOVA − GVA).
    pub const OFFSET_TABLE: u64 = 0x000;
    /// Reset-table entries: writing 1 to `RESET_TABLE + 8·i` pulses
    /// accelerator `i`'s reset line.
    pub const RESET_TABLE: u64 = 0x100;
    /// Read-only: number of physical accelerators on the device.
    pub const NUM_ACCELS: u64 = 0x200;
    /// Window-base-table entries: `WINDOW_BASE_TABLE + 8·i` holds the
    /// base IOVA of accelerator `i`'s outbound DMA window (the base of
    /// its tenant's page-table slice).
    pub const WINDOW_BASE_TABLE: u64 = 0x300;
    /// Window-length-table entries: `WINDOW_LEN_TABLE + 8·i` holds the
    /// byte length of accelerator `i`'s outbound DMA window. `u64::MAX`
    /// (the power-on value) disables screening.
    pub const WINDOW_LEN_TABLE: u64 = 0x400;
    /// Read-only: magic identifying an OPTIMUS-compatible configuration.
    pub const MAGIC: u64 = 0x208;
    /// Read-only: number of multiplexer-tree levels.
    pub const TREE_LEVELS: u64 = 0x210;
    /// The value [`MAGIC`] reads as ("OPTI" in ASCII).
    pub const MAGIC_VALUE: u64 = 0x4F50_5449;
}

/// Register offsets inside each accelerator's MMIO page.
pub mod accel_reg {
    /// Write-only command register: [`CMD_START`], [`CMD_PREEMPT`],
    /// [`CMD_RESUME`].
    pub const CTRL_CMD: u64 = 0x00;
    /// Read-only status register (a [`CtrlStatus`](crate::accelerator::CtrlStatus) value).
    pub const CTRL_STATUS: u64 = 0x08;
    /// Guest virtual address of the preemption state buffer.
    pub const CTRL_STATE_ADDR: u64 = 0x10;
    /// Read-only: bytes of state the accelerator saves on preemption.
    pub const CTRL_STATE_SIZE: u64 = 0x18;
    /// First application register; everything below is privileged control.
    pub const APP_BASE: u64 = 0x40;

    /// Begin (or continue) the programmed job.
    pub const CMD_START: u64 = 1;
    /// Drain in-flight transactions and save state to the state buffer.
    pub const CMD_PREEMPT: u64 = 2;
    /// Reload state from the state buffer and continue execution.
    pub const CMD_RESUME: u64 = 3;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        assert!(SHELL_SIZE <= VCU_BASE);
        assert_eq!(VCU_BASE + VCU_SIZE, ACCEL_BASE);
        assert_eq!(accel_mmio_base(0), ACCEL_BASE);
        assert_eq!(accel_mmio_base(1), ACCEL_BASE + ACCEL_PAGE);
    }

    #[test]
    fn decode_roundtrips() {
        for i in 0..8 {
            let (idx, off) = decode_accel_addr(accel_mmio_base(i) + 0x40).unwrap();
            assert_eq!(idx, i);
            assert_eq!(off, 0x40);
        }
        assert_eq!(decode_accel_addr(VCU_BASE), None);
        assert_eq!(decode_accel_addr(0), None);
    }

    #[test]
    fn control_registers_below_app_base() {
        use accel_reg::*;
        for reg in [CTRL_CMD, CTRL_STATUS, CTRL_STATE_ADDR, CTRL_STATE_SIZE] {
            assert!(reg < APP_BASE);
        }
    }
}
