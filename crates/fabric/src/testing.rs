//! A minimal reference accelerator for exercising the fabric.
//!
//! [`StreamCopier`] reads a range of lines from a source GVA, XORs every
//! byte with a constant, and writes the result to a destination GVA. It is
//! deliberately trivial — its purpose is to validate the full
//! monitor/auditor/tree/IOMMU path (and the preemption protocol) in fabric
//! and hypervisor tests without pulling in the real benchmark crate.
//! The real Table 1 accelerators live in `optimus-accel`.

use crate::accelerator::{AccelMeta, AccelPort, Accelerator, CtrlStatus};
use crate::mmio::accel_reg;
use crate::preempt::{PreemptEngine, PreemptProgress};
use optimus_mem::addr::Gva;
use optimus_sim::time::Cycle;

/// Execution phase of the copier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    Running,
    Draining,
    Saving,
    Saved,
    Restoring,
    Done,
}

/// A preemptible streaming XOR-copy accelerator (tests only).
#[derive(Debug)]
pub struct StreamCopier {
    meta: AccelMeta,
    phase: Phase,
    src: u64,
    dst: u64,
    lines: u64,
    xor: u8,
    /// Next line to read.
    read_cursor: u64,
    /// Next line to write (writes are issued strictly in order, so the
    /// written region is always a prefix — the invariant preemption needs).
    write_cursor: u64,
    /// Write acknowledgments retired.
    written: u64,
    engine: PreemptEngine,
    /// Read tag → line index.
    inflight_reads: std::collections::HashMap<u32, u64>,
    /// Lines read but not yet written (reorder buffer).
    reorder: std::collections::HashMap<u64, Box<[u8; 64]>>,
}

impl Default for StreamCopier {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamCopier {
    /// Application register: source GVA.
    pub const REG_SRC: u64 = accel_reg::APP_BASE;
    /// Application register: destination GVA.
    pub const REG_DST: u64 = accel_reg::APP_BASE + 8;
    /// Application register: number of lines to copy.
    pub const REG_LINES: u64 = accel_reg::APP_BASE + 16;
    /// Application register: XOR constant (low byte used).
    pub const REG_XOR: u64 = accel_reg::APP_BASE + 24;

    /// Creates an idle copier.
    pub fn new() -> Self {
        Self {
            meta: AccelMeta {
                name: "COPY",
                description: "XOR stream copier (test fixture)",
                freq_mhz: 400,
                verilog_loc: 0,
                alm_pct: 0.5,
                bram_pct: 0.0,
                alm_scale8: 8.0,
                bram_scale8: 8.0,
                state_bytes: 64,
                demand: 0.5,
            },
            phase: Phase::Idle,
            src: 0,
            dst: 0,
            lines: 0,
            xor: 0,
            read_cursor: 0,
            write_cursor: 0,
            written: 0,
            engine: PreemptEngine::new(),
            inflight_reads: std::collections::HashMap::new(),
            reorder: std::collections::HashMap::new(),
        }
    }

    fn serialize_state(&self) -> Vec<u8> {
        // The minimal state a designer would save (§4.2): configuration plus
        // the write cursor, which is the resume point because writes retire
        // in order.
        let mut out = Vec::with_capacity(64);
        for v in [self.src, self.dst, self.lines, self.write_cursor, self.xor as u64] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    fn restore_state(&mut self, bytes: &[u8]) {
        let word = |i: usize| u64::from_le_bytes(bytes[8 * i..8 * i + 8].try_into().unwrap());
        self.src = word(0);
        self.dst = word(1);
        self.lines = word(2);
        self.write_cursor = word(3);
        self.xor = word(4) as u8;
        self.read_cursor = self.write_cursor;
        self.written = self.write_cursor;
    }
}

impl Accelerator for StreamCopier {
    fn meta(&self) -> &AccelMeta {
        &self.meta
    }

    fn reset(&mut self) {
        *self = StreamCopier::new();
    }

    fn mmio_write(&mut self, offset: u64, value: u64) {
        match offset {
            accel_reg::CTRL_CMD => match value {
                accel_reg::CMD_START => {
                    self.read_cursor = 0;
                    self.write_cursor = 0;
                    self.written = 0;
                    self.inflight_reads.clear();
                    self.reorder.clear();
                    self.phase = if self.lines == 0 { Phase::Done } else { Phase::Running };
                }
                accel_reg::CMD_PREEMPT => {
                    if self.phase == Phase::Running {
                        self.phase = Phase::Draining;
                    } else if matches!(self.phase, Phase::Idle | Phase::Done) {
                        // Nothing running: trivially saved.
                        self.phase = Phase::Saved;
                    }
                }
                accel_reg::CMD_RESUME => {
                    self.engine.begin_restore();
                    self.phase = Phase::Restoring;
                }
                _ => {}
            },
            accel_reg::CTRL_STATE_ADDR => self.engine.set_state_addr(Gva::new(value)),
            Self::REG_SRC => self.src = value,
            Self::REG_DST => self.dst = value,
            Self::REG_LINES => self.lines = value,
            Self::REG_XOR => self.xor = value as u8,
            _ => {}
        }
    }

    fn mmio_read(&mut self, offset: u64) -> u64 {
        match offset {
            accel_reg::CTRL_STATUS => self.status() as u64,
            accel_reg::CTRL_STATE_SIZE => self.meta.state_bytes,
            Self::REG_SRC => self.src,
            Self::REG_DST => self.dst,
            Self::REG_LINES => self.lines,
            Self::REG_XOR => self.xor as u64,
            _ => 0,
        }
    }

    fn step(&mut self, now: Cycle, port: &mut AccelPort) {
        match self.phase {
            Phase::Idle | Phase::Saved | Phase::Done => {}
            Phase::Running => {
                // Retire responses: read data enters the reorder buffer,
                // write acknowledgments count toward completion.
                while let Some(resp) = port.pop_response() {
                    match resp.data {
                        Some(line) => {
                            let idx = self
                                .inflight_reads
                                .remove(&resp.tag.0)
                                .expect("read tag tracked");
                            self.reorder.insert(idx, line);
                        }
                        None => self.written += 1,
                    }
                }
                // Issue writes strictly in line order.
                while port.can_issue() {
                    let Some(line) = self.reorder.remove(&self.write_cursor) else {
                        break;
                    };
                    let mut out = *line;
                    for b in out.iter_mut() {
                        *b ^= self.xor;
                    }
                    port.write(Gva::new(self.dst + self.write_cursor * 64), Box::new(out), now);
                    self.write_cursor += 1;
                }
                // Issue the next read (bounded reorder window).
                if self.read_cursor < self.lines && self.reorder.len() < 16 && port.can_issue() {
                    let tag = port.read(Gva::new(self.src + self.read_cursor * 64), now);
                    self.inflight_reads.insert(tag.0, self.read_cursor);
                    self.read_cursor += 1;
                }
                if self.written == self.lines {
                    self.phase = Phase::Done;
                }
            }
            Phase::Draining => {
                // Stop issuing; let everything in flight land.
                while let Some(resp) = port.pop_response() {
                    if resp.data.is_some() {
                        let idx = self.inflight_reads.remove(&resp.tag.0).expect("tracked");
                        self.reorder.insert(idx, resp.data.unwrap());
                    } else {
                        self.written += 1;
                    }
                }
                if port.is_drained() {
                    // Because writes retire in order and all issued writes
                    // have now acked, the written prefix is exactly
                    // [0, write_cursor); the save point is the write cursor.
                    self.reorder.clear();
                    self.inflight_reads.clear();
                    self.engine.begin_save(self.serialize_state());
                    self.phase = Phase::Saving;
                }
            }
            Phase::Saving => {
                if self.engine.step(now, port) == PreemptProgress::SaveDone {
                    self.phase = Phase::Saved;
                }
            }
            Phase::Restoring => {
                if let PreemptProgress::RestoreDone(bytes) = self.engine.step(now, port) {
                    self.restore_state(&bytes);
                    self.inflight_reads.clear();
                    self.reorder.clear();
                    self.phase = if self.written == self.lines {
                        Phase::Done
                    } else {
                        Phase::Running
                    };
                }
            }
        }
    }

    fn status(&self) -> CtrlStatus {
        match self.phase {
            Phase::Idle => CtrlStatus::Idle,
            Phase::Running | Phase::Draining | Phase::Restoring => CtrlStatus::Running,
            Phase::Saving => CtrlStatus::Saving,
            Phase::Saved => CtrlStatus::Saved,
            Phase::Done => CtrlStatus::Done,
        }
    }

    fn next_event(&self, now: Cycle, port: &AccelPort) -> Option<Cycle> {
        // Quiescence hint: each arm mirrors `step` — `Some(now)` whenever
        // that arm could pop a response, issue a request, or change phase.
        match self.phase {
            Phase::Idle | Phase::Saved | Phase::Done => None,
            Phase::Running => {
                if port.queued_responses() > 0 || self.written == self.lines {
                    return Some(now);
                }
                let write_ready = self.reorder.contains_key(&self.write_cursor);
                let read_ready = self.read_cursor < self.lines && self.reorder.len() < 16;
                if port.can_issue() && (write_ready || read_ready) {
                    Some(now)
                } else {
                    None
                }
            }
            Phase::Draining => {
                if port.queued_responses() > 0 || port.is_drained() {
                    Some(now)
                } else {
                    None
                }
            }
            Phase::Saving | Phase::Restoring => {
                if port.queued_responses() > 0 || (self.engine.wants_issue() && port.can_issue()) {
                    Some(now)
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_read_back() {
        let mut c = StreamCopier::new();
        c.mmio_write(StreamCopier::REG_SRC, 0x1000);
        c.mmio_write(StreamCopier::REG_LINES, 42);
        assert_eq!(c.mmio_read(StreamCopier::REG_SRC), 0x1000);
        assert_eq!(c.mmio_read(StreamCopier::REG_LINES), 42);
        assert_eq!(c.mmio_read(accel_reg::CTRL_STATE_SIZE), 64);
    }

    #[test]
    fn zero_line_job_is_immediately_done() {
        let mut c = StreamCopier::new();
        c.mmio_write(accel_reg::CTRL_CMD, accel_reg::CMD_START);
        assert!(c.is_done());
    }

    #[test]
    fn state_serialization_round_trips() {
        let mut c = StreamCopier::new();
        c.src = 0x111;
        c.dst = 0x222;
        c.lines = 33;
        c.write_cursor = 7;
        c.xor = 0xAB;
        let bytes = c.serialize_state();
        let mut d = StreamCopier::new();
        d.restore_state(&bytes);
        assert_eq!((d.src, d.dst, d.lines, d.write_cursor, d.read_cursor, d.xor),
                   (0x111, 0x222, 33, 7, 7, 0xAB));
    }

    #[test]
    fn preempt_while_idle_reports_saved() {
        let mut c = StreamCopier::new();
        c.mmio_write(accel_reg::CTRL_CMD, accel_reg::CMD_PREEMPT);
        assert_eq!(c.status(), CtrlStatus::Saved);
    }

    #[test]
    fn reset_restores_power_on_state() {
        let mut c = StreamCopier::new();
        c.mmio_write(StreamCopier::REG_LINES, 9);
        c.mmio_write(accel_reg::CTRL_CMD, accel_reg::CMD_START);
        c.reset();
        assert_eq!(c.status(), CtrlStatus::Idle);
        assert_eq!(c.mmio_read(StreamCopier::REG_LINES), 0);
    }
}
