//! The virtualization control unit (VCU).
//!
//! The VCU is the hypervisor's management interface on the FPGA (§4.1). It
//! owns two tables:
//!
//! * the **offset table** — per-accelerator page-table-slicing offsets
//!   (IOVA − GVA), consulted by the auditors on every DMA;
//! * the **reset table** — per-accelerator reset lines, letting the
//!   hypervisor clear an individual accelerator's state on a VM context
//!   switch without touching its neighbours;
//! * the **window tables** — per-accelerator outbound DMA windows (base
//!   and length of the tenant's IOVA slice), enforced by the auditors so
//!   a wild guest pointer cannot escape into a neighbouring slice.
//!
//! It also answers configuration queries (accelerator count, compatibility
//! magic, tree depth) through read-only registers. MMIO packets whose
//! address falls inside the VCU's 4 KB page are intercepted here and never
//! reach the multiplexer tree.

use crate::mmio::vcu_reg;

/// Effects a VCU register write can have on the rest of the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VcuEffect {
    /// No side effect outside the VCU.
    None,
    /// Accelerator `index`'s slicing offset changed; auditors must reload.
    OffsetUpdated {
        /// The accelerator whose offset changed.
        index: usize,
    },
    /// Accelerator `index`'s reset line pulsed.
    ResetPulsed {
        /// The accelerator being reset.
        index: usize,
    },
    /// Accelerator `index`'s outbound DMA window changed; auditors must
    /// reload.
    WindowUpdated {
        /// The accelerator whose window changed.
        index: usize,
    },
    /// The write targeted an invalid register and was ignored.
    Ignored,
}

/// The virtualization control unit.
#[derive(Debug, Clone)]
pub struct Vcu {
    offsets: Vec<u64>,
    win_bases: Vec<u64>,
    win_lens: Vec<u64>,
    tree_levels: u32,
}

impl Vcu {
    /// Creates a VCU managing `num_accels` accelerators behind a
    /// `tree_levels`-deep multiplexer tree.
    pub fn new(num_accels: usize, tree_levels: u32) -> Self {
        Self {
            offsets: vec![0; num_accels],
            win_bases: vec![0; num_accels],
            win_lens: vec![u64::MAX; num_accels],
            tree_levels,
        }
    }

    /// Number of physical accelerators.
    pub fn num_accels(&self) -> usize {
        self.offsets.len()
    }

    /// Accelerator `index`'s current slicing offset.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn offset(&self, index: usize) -> u64 {
        self.offsets[index]
    }

    /// Accelerator `index`'s outbound DMA window as `(base, len)`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn window(&self, index: usize) -> (u64, u64) {
        (self.win_bases[index], self.win_lens[index])
    }

    /// Handles an MMIO write at `offset` within the VCU page.
    pub fn write(&mut self, offset: u64, value: u64) -> VcuEffect {
        if let Some(index) = table_index(offset, vcu_reg::OFFSET_TABLE, self.offsets.len()) {
            self.offsets[index] = value;
            return VcuEffect::OffsetUpdated { index };
        }
        if let Some(index) = table_index(offset, vcu_reg::RESET_TABLE, self.offsets.len()) {
            if value & 1 == 1 {
                return VcuEffect::ResetPulsed { index };
            }
            return VcuEffect::None;
        }
        if let Some(index) = table_index(offset, vcu_reg::WINDOW_BASE_TABLE, self.offsets.len()) {
            self.win_bases[index] = value;
            return VcuEffect::WindowUpdated { index };
        }
        if let Some(index) = table_index(offset, vcu_reg::WINDOW_LEN_TABLE, self.offsets.len()) {
            self.win_lens[index] = value;
            return VcuEffect::WindowUpdated { index };
        }
        VcuEffect::Ignored
    }

    /// Handles an MMIO read at `offset` within the VCU page.
    pub fn read(&self, offset: u64) -> u64 {
        if let Some(index) = table_index(offset, vcu_reg::OFFSET_TABLE, self.offsets.len()) {
            return self.offsets[index];
        }
        if let Some(index) = table_index(offset, vcu_reg::WINDOW_BASE_TABLE, self.offsets.len()) {
            return self.win_bases[index];
        }
        if let Some(index) = table_index(offset, vcu_reg::WINDOW_LEN_TABLE, self.offsets.len()) {
            return self.win_lens[index];
        }
        match offset {
            vcu_reg::NUM_ACCELS => self.offsets.len() as u64,
            vcu_reg::MAGIC => vcu_reg::MAGIC_VALUE,
            vcu_reg::TREE_LEVELS => self.tree_levels as u64,
            _ => 0,
        }
    }
}

/// Decodes `offset` as an index into an 8-byte-strided table at `base`.
fn table_index(offset: u64, base: u64, len: usize) -> Option<usize> {
    if offset < base {
        return None;
    }
    let rel = offset - base;
    if rel % 8 != 0 {
        return None;
    }
    let index = (rel / 8) as usize;
    (index < len).then_some(index)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offset_table_round_trips() {
        let mut vcu = Vcu::new(8, 3);
        let effect = vcu.write(vcu_reg::OFFSET_TABLE + 3 * 8, 0xDEAD_0000);
        assert_eq!(effect, VcuEffect::OffsetUpdated { index: 3 });
        assert_eq!(vcu.offset(3), 0xDEAD_0000);
        assert_eq!(vcu.read(vcu_reg::OFFSET_TABLE + 3 * 8), 0xDEAD_0000);
    }

    #[test]
    fn reset_table_pulses_on_one() {
        let mut vcu = Vcu::new(4, 2);
        assert_eq!(
            vcu.write(vcu_reg::RESET_TABLE + 2 * 8, 1),
            VcuEffect::ResetPulsed { index: 2 }
        );
        assert_eq!(vcu.write(vcu_reg::RESET_TABLE + 2 * 8, 0), VcuEffect::None);
    }

    #[test]
    fn window_tables_round_trip() {
        let mut vcu = Vcu::new(4, 2);
        // Power-on: unrestricted.
        assert_eq!(vcu.window(1), (0, u64::MAX));
        assert_eq!(
            vcu.write(vcu_reg::WINDOW_BASE_TABLE + 8, 64 << 30),
            VcuEffect::WindowUpdated { index: 1 }
        );
        assert_eq!(
            vcu.write(vcu_reg::WINDOW_LEN_TABLE + 8, 1 << 30),
            VcuEffect::WindowUpdated { index: 1 }
        );
        assert_eq!(vcu.window(1), (64 << 30, 1 << 30));
        assert_eq!(vcu.read(vcu_reg::WINDOW_BASE_TABLE + 8), 64 << 30);
        assert_eq!(vcu.read(vcu_reg::WINDOW_LEN_TABLE + 8), 1 << 30);
        // Other entries untouched.
        assert_eq!(vcu.window(0), (0, u64::MAX));
        // Out-of-range entries ignored.
        assert_eq!(vcu.write(vcu_reg::WINDOW_LEN_TABLE + 9 * 8, 1), VcuEffect::Ignored);
    }

    #[test]
    fn config_registers_read_back() {
        let vcu = Vcu::new(8, 3);
        assert_eq!(vcu.read(vcu_reg::NUM_ACCELS), 8);
        assert_eq!(vcu.read(vcu_reg::MAGIC), vcu_reg::MAGIC_VALUE);
        assert_eq!(vcu.read(vcu_reg::TREE_LEVELS), 3);
    }

    #[test]
    fn out_of_range_writes_ignored() {
        let mut vcu = Vcu::new(2, 1);
        assert_eq!(vcu.write(vcu_reg::OFFSET_TABLE + 5 * 8, 1), VcuEffect::Ignored);
        assert_eq!(vcu.write(0xF00, 1), VcuEffect::Ignored);
        // Misaligned offsets are not table entries.
        assert_eq!(vcu.write(vcu_reg::OFFSET_TABLE + 4, 1), VcuEffect::Ignored);
    }

    #[test]
    fn unknown_reads_return_zero() {
        let vcu = Vcu::new(2, 1);
        assert_eq!(vcu.read(0xF00), 0);
    }
}
