//! The accelerator abstraction and its DMA port.
//!
//! Every benchmark in `optimus-accel` implements [`Accelerator`]: a
//! cycle-stepped state machine with an MMIO register file and a DMA port.
//! The trait bakes in the paper's *preemption interface* (§4.2): a set of
//! privileged control registers through which the hypervisor starts,
//! preempts, and resumes jobs, with execution state saved to a guest-
//! provided memory buffer via ordinary DMA writes.
//!
//! [`AccelPort`] is the accelerator side of the auditor link. It enforces
//! the structural contract of CCI-P pipelining (bounded outstanding
//! requests), matches responses to requests by tag, and doubles as the
//! measurement point for per-accelerator bandwidth and latency.

use crate::auditor::OutboundReq;
use optimus_cci::packet::{Line, Tag};
use optimus_cci::params::MAX_OUTSTANDING;
use optimus_mem::addr::Gva;
use optimus_sim::hashing::FastMap;
use optimus_sim::stats::{LatencyStats, ThroughputMeter};
use optimus_sim::time::Cycle;
use std::collections::VecDeque;

/// Static description of an accelerator configuration (Table 1 + Table 2
/// inputs).
#[derive(Debug, Clone)]
pub struct AccelMeta {
    /// Short name as used in the paper's tables (e.g. `"AES"`).
    pub name: &'static str,
    /// One-line description (Table 1's "Description" column).
    pub description: &'static str,
    /// Synthesized clock frequency in MHz (Table 1).
    pub freq_mhz: u64,
    /// Lines of Verilog in the original implementation (Table 1).
    pub verilog_loc: u32,
    /// Single-instance ALM utilization %, from the synthesis report
    /// (Table 2's pass-through column).
    pub alm_pct: f64,
    /// Single-instance BRAM utilization % (Table 2's pass-through column).
    pub bram_pct: f64,
    /// Measured 8-instance replication factor for ALMs (toolchain input;
    /// >8 means routing overhead, <8 means the synthesizer found sharing).
    pub alm_scale8: f64,
    /// Measured 8-instance replication factor for BRAM.
    pub bram_scale8: f64,
    /// Architectural state saved on preemption, in bytes.
    pub state_bytes: u64,
    /// Nominal fraction of the 12.8 GB/s monitor bandwidth the accelerator
    /// demands when running alone (documentation/validation only; actual
    /// demand emerges from the state machine).
    pub demand: f64,
}

/// Values of the `CTRL_STATUS` register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u64)]
pub enum CtrlStatus {
    /// No job programmed.
    Idle = 0,
    /// Executing a job.
    Running = 1,
    /// Draining in-flight transactions and writing state to memory.
    Saving = 2,
    /// State saved; safe to schedule another virtual accelerator.
    Saved = 3,
    /// Job complete.
    Done = 4,
}

impl CtrlStatus {
    /// Decodes a register value (unknown values read as `Idle`).
    pub fn from_u64(v: u64) -> Self {
        match v {
            1 => CtrlStatus::Running,
            2 => CtrlStatus::Saving,
            3 => CtrlStatus::Saved,
            4 => CtrlStatus::Done,
            _ => CtrlStatus::Idle,
        }
    }
}

/// A response delivered to the accelerator by its auditor.
#[derive(Debug, Clone)]
pub struct AccelResponse {
    /// The tag of the originating request.
    pub tag: Tag,
    /// The line read, or `None` for a write acknowledgment.
    pub data: Option<Box<Line>>,
}

/// The accelerator side of the auditor link.
#[derive(Debug)]
pub struct AccelPort {
    next_tag: u32,
    /// Tag → (issue cycle, is_write). Keyed by simulator-generated tags,
    /// so the fast deterministic hasher applies (this map is touched
    /// twice per DMA — the hottest map in the workspace).
    in_flight: FastMap<u32, (Cycle, bool)>,
    pending: VecDeque<OutboundReq>,
    responses: VecDeque<AccelResponse>,
    latency: LatencyStats,
    meter: ThroughputMeter,
    read_bytes: u64,
    write_bytes: u64,
    stale_discarded: u64,
}

/// How many issued-but-not-yet-forwarded requests a port buffers before the
/// accelerator must stall (the register stage between accelerator and
/// auditor).
const PORT_PENDING_CAPACITY: usize = 4;

impl Default for AccelPort {
    fn default() -> Self {
        Self::new()
    }
}

impl AccelPort {
    /// Creates an idle port.
    pub fn new() -> Self {
        Self {
            next_tag: 0,
            in_flight: FastMap::default(),
            pending: VecDeque::new(),
            responses: VecDeque::new(),
            latency: LatencyStats::new(),
            meter: ThroughputMeter::new(),
            read_bytes: 0,
            write_bytes: 0,
            stale_discarded: 0,
        }
    }

    /// Whether the accelerator may issue another request this cycle.
    pub fn can_issue(&self) -> bool {
        self.pending.len() < PORT_PENDING_CAPACITY && self.in_flight.len() < MAX_OUTSTANDING
    }

    /// Issues a line read at `gva`.
    ///
    /// # Panics
    ///
    /// Panics if called while [`can_issue`](Self::can_issue) is false —
    /// accelerators must respect backpressure.
    pub fn read(&mut self, gva: Gva, now: Cycle) -> Tag {
        assert!(self.can_issue(), "accelerator issued past backpressure");
        let tag = Tag(self.next_tag);
        self.next_tag = self.next_tag.wrapping_add(1);
        self.in_flight.insert(tag.0, (now, false));
        self.pending.push_back(OutboundReq {
            gva,
            write: None,
            tag,
        });
        tag
    }

    /// Issues a line write of `data` at `gva`.
    ///
    /// # Panics
    ///
    /// Panics if called while [`can_issue`](Self::can_issue) is false.
    pub fn write(&mut self, gva: Gva, data: Box<Line>, now: Cycle) -> Tag {
        assert!(self.can_issue(), "accelerator issued past backpressure");
        let tag = Tag(self.next_tag);
        self.next_tag = self.next_tag.wrapping_add(1);
        self.in_flight.insert(tag.0, (now, true));
        self.pending.push_back(OutboundReq {
            gva,
            write: Some(data),
            tag,
        });
        tag
    }

    /// Pops the next delivered response, if any.
    pub fn pop_response(&mut self) -> Option<AccelResponse> {
        self.responses.pop_front()
    }

    /// Number of delivered responses the accelerator has not yet popped.
    ///
    /// Used by the fast-forward machinery: a non-empty response queue means
    /// the next `step` is never a no-op, regardless of what the
    /// accelerator's own quiescence hint says.
    pub fn queued_responses(&self) -> usize {
        self.responses.len()
    }

    /// Number of requests issued but not yet answered.
    pub fn outstanding(&self) -> usize {
        self.in_flight.len()
    }

    /// True when no requests are pending or in flight — the quiesced
    /// condition the preemption interface waits for.
    pub fn is_drained(&self) -> bool {
        self.in_flight.is_empty() && self.pending.is_empty()
    }

    // ---- device-side interface -------------------------------------------

    /// Takes the oldest not-yet-forwarded request (auditor side).
    pub fn take_pending(&mut self) -> Option<OutboundReq> {
        self.pending.pop_front()
    }

    /// Peeks whether a request is waiting to be forwarded.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Delivers a response from the auditor. Unknown tags (stale responses
    /// from before a reset) are discarded and counted.
    ///
    /// Returns whether the response matched an in-flight request, so the
    /// device can fold stale discards into its own integrity accounting
    /// exactly once (the port-local counter alone was invisible to
    /// `HvStats.discarded_dma`).
    pub fn deliver(&mut self, tag: Tag, data: Option<Box<Line>>, now: Cycle) -> bool {
        match self.in_flight.remove(&tag.0) {
            Some((issued_at, is_write)) => {
                self.latency.record(now.saturating_sub(issued_at));
                let bytes = 64;
                if is_write {
                    self.write_bytes += bytes;
                } else {
                    self.read_bytes += bytes;
                }
                self.meter.add_bytes(bytes);
                self.responses.push_back(AccelResponse { tag, data });
                true
            }
            None => {
                self.stale_discarded += 1;
                false
            }
        }
    }

    /// Clears all port state (accelerator reset). In-flight responses that
    /// arrive later are dropped as stale.
    pub fn reset(&mut self) {
        self.in_flight.clear();
        self.pending.clear();
        self.responses.clear();
    }

    // ---- measurement ------------------------------------------------------

    /// Starts a throughput measurement window.
    pub fn open_window(&mut self, now: Cycle) {
        self.meter.open_window(now);
    }

    /// Ends the throughput measurement window.
    pub fn close_window(&mut self, now: Cycle) {
        self.meter.close_window(now);
    }

    /// Measured bandwidth over the window, GB/s.
    pub fn window_gbps(&self) -> f64 {
        self.meter.gbps()
    }

    /// Bytes moved inside the window.
    pub fn window_bytes(&self) -> u64 {
        self.meter.bytes()
    }

    /// Per-request latency statistics (mutable: percentiles sort lazily).
    pub fn latency_stats(&mut self) -> &mut LatencyStats {
        &mut self.latency
    }

    /// Lifetime (read, write) byte counters.
    pub fn byte_counts(&self) -> (u64, u64) {
        (self.read_bytes, self.write_bytes)
    }

    /// Stale responses discarded since construction.
    pub fn stale_discarded(&self) -> u64 {
        self.stale_discarded
    }
}

/// A simulated FPGA accelerator.
///
/// Implementations are cycle-stepped state machines: [`step`](Self::step)
/// is invoked on every rising edge of the accelerator's own clock (derived
/// from the 400 MHz fabric clock via its divider), and may issue at most a
/// handful of DMA requests through the port per step, subject to
/// [`AccelPort::can_issue`].
pub trait Accelerator: Send {
    /// Static metadata (Table 1/Table 2 inputs).
    fn meta(&self) -> &AccelMeta;

    /// Hardware reset: return all architectural state to power-on values.
    fn reset(&mut self);

    /// MMIO register write (page-relative offset).
    fn mmio_write(&mut self, offset: u64, value: u64);

    /// MMIO register read (page-relative offset).
    fn mmio_read(&mut self, offset: u64) -> u64;

    /// One cycle of the accelerator's clock domain.
    fn step(&mut self, now: Cycle, port: &mut AccelPort);

    /// Current control status (mirrors the `CTRL_STATUS` register without
    /// MMIO side effects).
    fn status(&self) -> CtrlStatus;

    /// Side-effect-free peek at an *application* register (offset relative
    /// to [`crate::mmio::accel_reg::APP_BASE`]). The hypervisor uses this
    /// to harvest a completed job's result registers when it evicts the
    /// tenant from the physical slot; accelerators without readable
    /// application state can keep the all-zero default.
    fn peek_reg(&self, offset: u64) -> u64 {
        let _ = offset;
        0
    }

    /// Whether the programmed job has completed.
    fn is_done(&self) -> bool {
        self.status() == CtrlStatus::Done
    }

    /// Quiescence hint for event-horizon fast-forwarding.
    ///
    /// Returning `Some(t)` with `t > now` (or `None`, meaning "indefinitely
    /// quiescent") asserts that every [`step`](Self::step) before `t` is a
    /// *pure no-op* — no state change, no port activity — provided no new
    /// responses are delivered and no MMIO register is written in the gap
    /// (the device re-polls the hint after either). The device additionally
    /// never skips while the port has queued responses or pending requests,
    /// so hints only need to reason about the accelerator's own state.
    ///
    /// The default `Some(now)` ("an event this cycle") disables skipping, so
    /// implementations are correct by default and opt in incrementally.
    fn next_event(&self, now: Cycle, port: &AccelPort) -> Option<Cycle> {
        let _ = port;
        Some(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_unique_and_sequential() {
        let mut p = AccelPort::new();
        let t1 = p.read(Gva::new(0), 0);
        let t2 = p.write(Gva::new(64), Box::new([0; 64]), 0);
        assert_ne!(t1, t2);
        assert_eq!(p.outstanding(), 2);
        assert!(p.has_pending());
    }

    #[test]
    fn pending_capacity_applies_backpressure() {
        let mut p = AccelPort::new();
        for i in 0..PORT_PENDING_CAPACITY {
            assert!(p.can_issue(), "slot {i}");
            p.read(Gva::new(i as u64 * 64), 0);
        }
        assert!(!p.can_issue());
        p.take_pending().unwrap();
        assert!(p.can_issue());
    }

    #[test]
    #[should_panic(expected = "backpressure")]
    fn issuing_past_backpressure_panics() {
        let mut p = AccelPort::new();
        for i in 0..=PORT_PENDING_CAPACITY {
            p.read(Gva::new(i as u64 * 64), 0);
        }
    }

    #[test]
    fn deliver_matches_tag_and_records_latency() {
        let mut p = AccelPort::new();
        let t = p.read(Gva::new(0), 100);
        p.take_pending();
        p.deliver(t, Some(Box::new([9; 64])), 300);
        let r = p.pop_response().unwrap();
        assert_eq!(r.tag, t);
        assert_eq!(r.data.unwrap()[0], 9);
        assert_eq!(p.latency_stats().mean_cycles(), 200.0);
        assert_eq!(p.byte_counts(), (64, 0));
        assert!(p.is_drained());
    }

    #[test]
    fn stale_responses_after_reset_are_discarded() {
        let mut p = AccelPort::new();
        let t = p.read(Gva::new(0), 0);
        p.take_pending();
        p.reset();
        p.deliver(t, Some(Box::new([0; 64])), 50);
        assert!(p.pop_response().is_none());
        assert_eq!(p.stale_discarded(), 1);
    }

    #[test]
    fn window_meters_only_bracketed_bytes() {
        let mut p = AccelPort::new();
        let t0 = p.read(Gva::new(0), 0);
        p.take_pending();
        p.deliver(t0, Some(Box::new([0; 64])), 10); // before window
        p.open_window(100);
        let t1 = p.write(Gva::new(64), Box::new([1; 64]), 100);
        p.take_pending();
        p.deliver(t1, None, 150);
        p.close_window(200);
        assert_eq!(p.window_bytes(), 64);
        assert_eq!(p.byte_counts(), (64, 64));
    }

    #[test]
    fn ctrl_status_decodes() {
        assert_eq!(CtrlStatus::from_u64(0), CtrlStatus::Idle);
        assert_eq!(CtrlStatus::from_u64(3), CtrlStatus::Saved);
        assert_eq!(CtrlStatus::from_u64(99), CtrlStatus::Idle);
    }
}
