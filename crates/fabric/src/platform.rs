//! The device-facing surface the hypervisor programs against.
//!
//! `Optimus` historically owned one concrete [`FpgaDevice`] and reached
//! into it directly. The node layer (multiple devices behind one
//! hypervisor facade) needs that surface named: [`PlatformDevice`] is the
//! exact set of operations the hypervisor uses — MMIO, bulk advance,
//! the `next_event` protocol (inherited from
//! [`PlatformClock`](optimus_sim::clock::PlatformClock)), host-memory
//! access for page installs, preempt/reset, and stats drain. Each device
//! in a node is addressed by a [`DeviceId`], and construction failures
//! surface as typed [`FabricError`]s instead of bare panics.

use crate::accelerator::CtrlStatus;
use optimus_cci::host_side::HostSide;
use optimus_sim::clock::PlatformClock;
use optimus_sim::time::Cycle;

/// Identifies one device within a node. Single-device deployments use
/// `DeviceId(0)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub u32);

impl core::fmt::Display for DeviceId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "fpga{}", self.0)
    }
}

/// Typed construction errors for fabric devices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FabricError {
    /// A device needs at least one accelerator behind the monitor.
    NoAccelerators,
    /// The multiplexer tree addresses accelerators with an 8-bit ID.
    TooManyAccelerators {
        /// How many accelerators the caller asked for.
        requested: usize,
        /// The hardware limit.
        max: usize,
    },
}

impl core::fmt::Display for FabricError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FabricError::NoAccelerators => {
                write!(f, "device needs at least one accelerator")
            }
            FabricError::TooManyAccelerators { requested, max } => {
                write!(f, "device supports at most {max} accelerators, got {requested}")
            }
        }
    }
}

impl std::error::Error for FabricError {}

/// Isolation/robustness counters a device accumulates while running:
/// packets dropped at the shell and per-auditor discard totals. Drained
/// into `HvStats` so violations are visible in benchmark reports instead
/// of stranded on the device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceIntegrity {
    /// Packets dropped at the shell/auditor layer (bad address or identity).
    pub dropped_packets: u64,
    /// DMA responses the auditors discarded (failed identity audit).
    pub discarded_dma: u64,
    /// MMIO accesses the auditors discarded (outside the slice window).
    pub discarded_mmio: u64,
}

/// The device operations the hypervisor uses, abstracted over the
/// concrete fabric so a node can own many devices (and tests can
/// substitute instrumented ones).
///
/// Clocking — `now`, `next_event`, fast-forward — comes from the
/// [`PlatformClock`] supertrait; this trait adds the control plane. The
/// `Send` supertrait is what lets a node step devices on worker threads.
pub trait PlatformDevice: PlatformClock + Send {
    /// Runs the device for `cycles` fabric cycles.
    fn run(&mut self, cycles: Cycle);

    /// CPU-side blocking MMIO read (steps the device until the response
    /// returns).
    fn mmio_read(&mut self, addr: u64) -> u64;

    /// CPU-side MMIO write (takes effect after the transport latency).
    fn mmio_write(&mut self, addr: u64, value: u64);

    /// Number of physical accelerator slots.
    fn num_accels(&self) -> usize;

    /// Side-effect-free peek at a slot's application register (offset
    /// relative to `APP_BASE`), mirroring
    /// [`Accelerator::peek_reg`](crate::accelerator::Accelerator::peek_reg).
    /// The hypervisor harvests a completed tenant's result registers with
    /// this when the slot is handed to another vaccel.
    fn peek_app_reg(&self, slot: usize, offset: u64) -> u64 {
        let _ = (slot, offset);
        0
    }

    /// Control status of the accelerator in `slot`.
    fn accel_status(&self, slot: usize) -> CtrlStatus;

    /// Pulses `slot`'s reset line (forced preemption).
    fn reset_accel(&mut self, slot: usize);

    /// Device-side contract for detaching a tenant from `slot` (migration
    /// off this device): scrub any datapath state the outgoing tenant left
    /// behind, the same isolation hygiene §4.1 requires on a VM context
    /// switch. The default is a reset pulse; devices with extra per-slot
    /// state override this.
    fn detach_slot(&mut self, slot: usize) {
        self.reset_accel(slot);
    }

    /// The host side (memory, IOMMU, channels).
    fn host(&self) -> &HostSide;

    /// Mutable host side (page installs, IOPT management).
    fn host_mut(&mut self) -> &mut HostSide;

    /// Drains the device's isolation counters.
    fn integrity(&self) -> DeviceIntegrity;

    /// Monotone count of packets from accelerator `slot` that have
    /// cleared the multiplexer-tree root. Deterministic device-owned
    /// state the isolation watchdog diffs across its window for
    /// starvation detection; devices without a tree (pass-through)
    /// report 0.
    fn port_forwarded(&self, slot: usize) -> u64 {
        let _ = slot;
        0
    }

    /// Overrides the fast-forward mode sampled at construction.
    fn set_fast_forward(&mut self, on: bool);

    /// Overrides the batched-stepping burst length sampled at
    /// construction (1 disables batching). Devices that never batch may
    /// ignore it.
    fn set_batch_step(&mut self, k: Cycle) {
        let _ = k;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_id_displays_as_fpga_index() {
        assert_eq!(DeviceId(3).to_string(), "fpga3");
        assert!(DeviceId(0) < DeviceId(1));
    }

    #[test]
    fn fabric_error_messages_name_the_cause() {
        assert!(FabricError::NoAccelerators.to_string().contains("at least one"));
        let e = FabricError::TooManyAccelerators { requested: 300, max: 255 };
        assert!(e.to_string().contains("300"));
        assert!(e.to_string().contains("255"));
    }
}
