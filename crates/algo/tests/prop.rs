//! Property-based tests of the algorithm implementations, on the in-tree
//! `optimus-testkit` harness (replay failures with
//! `OPTIMUS_PROP_SEED=<printed seed>`).

use optimus_algo::aes::Aes128;
use optimus_algo::graph::{sssp, sssp_dijkstra, CsrGraph};
use optimus_algo::md5::{md5, Md5};
use optimus_algo::reed_solomon::ReedSolomon;
use optimus_algo::sha2::{sha512, Sha512};
use optimus_algo::smith_waterman::{align, score_only, Scoring};
use optimus_testkit::gens;
use optimus_testkit::runner::check;
use optimus_testkit::{prop_assert, prop_assert_eq};

/// AES decrypt(encrypt(x)) == x for every key and block.
#[test]
fn aes_round_trips() {
    let gen = gens::zip2(gens::bytes16(), gens::bytes16());
    check("aes_round_trips", &gen, |&(key, block)| {
        let aes = Aes128::new(&key);
        prop_assert_eq!(aes.decrypt_block(&aes.encrypt_block(&block)), block);
        Ok(())
    });
}

/// MD5 over arbitrary chunkings equals the one-shot digest.
#[test]
fn md5_chunking_invariant() {
    let gen = gens::zip2(
        gens::vec_of(gens::byte_any(), 0..600),
        gens::usize_in(0..600),
    );
    check("md5_chunking_invariant", &gen, |(data, cut): &(Vec<u8>, usize)| {
        let cut = (*cut).min(data.len());
        let mut h = Md5::new();
        h.update(&data[..cut]);
        h.update(&data[cut..]);
        prop_assert_eq!(h.finalize(), md5(data));
        Ok(())
    });
}

/// SHA-512 over arbitrary chunkings equals the one-shot digest.
#[test]
fn sha512_chunking_invariant() {
    let gen = gens::zip2(
        gens::vec_of(gens::byte_any(), 0..600),
        gens::usize_in(0..600),
    );
    check(
        "sha512_chunking_invariant",
        &gen,
        |(data, cut): &(Vec<u8>, usize)| {
            let cut = (*cut).min(data.len());
            let mut h = Sha512::new();
            h.update(&data[..cut]);
            h.update(&data[cut..]);
            prop_assert_eq!(h.finalize().to_vec(), sha512(data).to_vec());
            Ok(())
        },
    );
}

/// Reed–Solomon corrects any error pattern within capacity.
#[test]
fn rs_corrects_within_capacity() {
    let gen = gens::zip2(
        gens::vec_of(gens::byte_any(), 1..200),
        gens::vec_of(
            gens::zip2(
                gens::usize_in(0..232),
                // Non-zero flip byte, 1..=255.
                gens::u64_in(1..256).map(|v| v as u8),
            ),
            0..8,
        ),
    );
    check(
        "rs_corrects_within_capacity",
        &gen,
        |(msg, errors): &(Vec<u8>, Vec<(usize, u8)>)| {
            let rs = ReedSolomon::new(16); // corrects 8
            let clean = rs.encode(msg);
            let mut cw = clean.clone();
            let mut touched = std::collections::HashSet::new();
            for &(pos, flip) in errors {
                let p = pos % cw.len();
                if touched.insert(p) {
                    cw[p] ^= flip;
                }
            }
            prop_assert_eq!(rs.decode(&cw).unwrap(), msg.clone());
            Ok(())
        },
    );
}

/// Smith–Waterman: score-only equals full alignment; score is symmetric
/// and bounded by 2·min(len).
#[test]
fn sw_score_properties() {
    let dna = || gens::vec_of(gens::choose(vec![b'A', b'C', b'G', b'T']), 0..40);
    let gen = gens::zip2(dna(), dna());
    check("sw_score_properties", &gen, |(a, b): &(Vec<u8>, Vec<u8>)| {
        let s = Scoring::default();
        let fwd = score_only(a, b, &s);
        prop_assert_eq!(fwd, align(a, b, &s).score);
        prop_assert_eq!(fwd, score_only(b, a, &s));
        prop_assert!(fwd >= 0);
        prop_assert!(fwd <= 2 * a.len().min(b.len()) as i32);
        Ok(())
    });
}

/// The frontier SSSP always equals Dijkstra.
#[test]
fn sssp_matches_dijkstra() {
    let gen = gens::zip3(
        gens::usize_in(1..60),
        gens::vec_of(
            gens::zip3(gens::u32_in(0..60), gens::u32_in(0..60), gens::u32_in(1..50)),
            0..300,
        ),
        gens::u32_in(0..60),
    );
    check(
        "sssp_matches_dijkstra",
        &gen,
        |(n, edges, source): &(usize, Vec<(u32, u32, u32)>, u32)| {
            let n = *n;
            let edges: Vec<(u32, u32, u32)> = edges
                .iter()
                .map(|&(a, b, w)| (a % n as u32, b % n as u32, w))
                .collect();
            let g = CsrGraph::from_edges(n, &edges);
            let src = source % n as u32;
            prop_assert_eq!(sssp(&g, src), sssp_dijkstra(&g, src));
            Ok(())
        },
    );
}

/// Graph DRAM serialization round-trips.
#[test]
fn graph_layout_round_trips() {
    let gen = gens::zip2(
        gens::usize_in(1..40),
        gens::vec_of(
            gens::zip3(gens::u32_in(0..40), gens::u32_in(0..40), gens::u32_in(0..100)),
            0..200,
        ),
    );
    check(
        "graph_layout_round_trips",
        &gen,
        |(n, edges): &(usize, Vec<(u32, u32, u32)>)| {
            let n = *n;
            let edges: Vec<(u32, u32, u32)> = edges
                .iter()
                .map(|&(a, b, w)| (a % n as u32, b % n as u32, w))
                .collect();
            let g = CsrGraph::from_edges(n, &edges);
            prop_assert_eq!(CsrGraph::from_dram_layout(&g.to_dram_layout()), g);
            Ok(())
        },
    );
}
