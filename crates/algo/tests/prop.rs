//! Property-based tests of the algorithm implementations.

use optimus_algo::aes::Aes128;
use optimus_algo::graph::{sssp, sssp_dijkstra, CsrGraph};
use optimus_algo::md5::{md5, Md5};
use optimus_algo::reed_solomon::ReedSolomon;
use optimus_algo::sha2::{sha512, Sha512};
use optimus_algo::smith_waterman::{align, score_only, Scoring};
use proptest::prelude::*;

proptest! {
    /// AES decrypt(encrypt(x)) == x for every key and block.
    #[test]
    fn aes_round_trips(key: [u8; 16], block: [u8; 16]) {
        let aes = Aes128::new(&key);
        prop_assert_eq!(aes.decrypt_block(&aes.encrypt_block(&block)), block);
    }

    /// MD5 over arbitrary chunkings equals the one-shot digest.
    #[test]
    fn md5_chunking_invariant(data in proptest::collection::vec(any::<u8>(), 0..600),
                              cut in 0usize..600) {
        let cut = cut.min(data.len());
        let mut h = Md5::new();
        h.update(&data[..cut]);
        h.update(&data[cut..]);
        prop_assert_eq!(h.finalize(), md5(&data));
    }

    /// SHA-512 over arbitrary chunkings equals the one-shot digest.
    #[test]
    fn sha512_chunking_invariant(data in proptest::collection::vec(any::<u8>(), 0..600),
                                 cut in 0usize..600) {
        let cut = cut.min(data.len());
        let mut h = Sha512::new();
        h.update(&data[..cut]);
        h.update(&data[cut..]);
        prop_assert_eq!(h.finalize().to_vec(), sha512(&data).to_vec());
    }

    /// Reed–Solomon corrects any error pattern within capacity.
    #[test]
    fn rs_corrects_within_capacity(
        msg in proptest::collection::vec(any::<u8>(), 1..200),
        errors in proptest::collection::vec((0usize..232, 1u8..=255), 0..8),
    ) {
        let rs = ReedSolomon::new(16); // corrects 8
        let clean = rs.encode(&msg);
        let mut cw = clean.clone();
        let mut touched = std::collections::HashSet::new();
        for &(pos, flip) in &errors {
            let p = pos % cw.len();
            if touched.insert(p) {
                cw[p] ^= flip;
            }
        }
        prop_assert_eq!(rs.decode(&cw).unwrap(), msg);
    }

    /// Smith–Waterman: score-only equals full alignment; score is
    /// symmetric and bounded by 2·min(len).
    #[test]
    fn sw_score_properties(
        a in proptest::collection::vec(proptest::sample::select(vec![b'A', b'C', b'G', b'T']), 0..40),
        b in proptest::collection::vec(proptest::sample::select(vec![b'A', b'C', b'G', b'T']), 0..40),
    ) {
        let s = Scoring::default();
        let fwd = score_only(&a, &b, &s);
        prop_assert_eq!(fwd, align(&a, &b, &s).score);
        prop_assert_eq!(fwd, score_only(&b, &a, &s));
        prop_assert!(fwd >= 0);
        prop_assert!(fwd <= 2 * a.len().min(b.len()) as i32);
    }

    /// The frontier SSSP always equals Dijkstra.
    #[test]
    fn sssp_matches_dijkstra(
        n in 1usize..60,
        edges in proptest::collection::vec((0u32..60, 0u32..60, 1u32..50), 0..300),
        source in 0u32..60,
    ) {
        let edges: Vec<(u32, u32, u32)> = edges
            .into_iter()
            .map(|(a, b, w)| (a % n as u32, b % n as u32, w))
            .collect();
        let g = CsrGraph::from_edges(n, &edges);
        let src = source % n as u32;
        prop_assert_eq!(sssp(&g, src), sssp_dijkstra(&g, src));
    }

    /// Graph DRAM serialization round-trips.
    #[test]
    fn graph_layout_round_trips(
        n in 1usize..40,
        edges in proptest::collection::vec((0u32..40, 0u32..40, 0u32..100), 0..200),
    ) {
        let edges: Vec<(u32, u32, u32)> = edges
            .into_iter()
            .map(|(a, b, w)| (a % n as u32, b % n as u32, w))
            .collect();
        let g = CsrGraph::from_edges(n, &edges);
        prop_assert_eq!(CsrGraph::from_dram_layout(&g.to_dram_layout()), g);
    }
}
