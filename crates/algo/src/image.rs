//! Image filters: Gaussian blur, grayscale conversion, Sobel edge detection.
//!
//! Three of the paper's HardCloud benchmarks are image filters (GAU, GRS,
//! SBL — each ~2.3–2.5 kLoC of Verilog at 200 MHz). FPGA image pipelines
//! process pixels in integer arithmetic with line buffers; this module
//! mirrors that: 8-bit channels, integer kernel math, clamp-to-edge
//! borders.
//!
//! Images are stored as flat row-major buffers in an [`Image`] container.
//!
//! # Examples
//!
//! ```
//! use optimus_algo::image::{Image, grayscale};
//!
//! let rgb = Image::new(4, 4, 3, vec![128; 4 * 4 * 3]);
//! let gray = grayscale(&rgb);
//! assert_eq!(gray.channels(), 1);
//! assert_eq!(gray.get(2, 2, 0), 128);
//! ```

/// A flat row-major image with 1 or 3 byte channels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    width: usize,
    height: usize,
    channels: usize,
    data: Vec<u8>,
}

impl Image {
    /// Creates an image from raw data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height * channels` or `channels` is
    /// not 1 or 3.
    pub fn new(width: usize, height: usize, channels: usize, data: Vec<u8>) -> Self {
        assert!(channels == 1 || channels == 3, "1 or 3 channels supported");
        assert_eq!(data.len(), width * height * channels, "data size mismatch");
        Self {
            width,
            height,
            channels,
            data,
        }
    }

    /// Creates a black image.
    pub fn zeroed(width: usize, height: usize, channels: usize) -> Self {
        Self::new(width, height, channels, vec![0; width * height * channels])
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Channels per pixel (1 = gray, 3 = RGB).
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Raw pixel buffer.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Mutable raw pixel buffer.
    pub fn data_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Reads channel `c` of pixel `(x, y)` with clamp-to-edge addressing.
    pub fn get(&self, x: isize, y: isize, c: usize) -> u8 {
        let x = x.clamp(0, self.width as isize - 1) as usize;
        let y = y.clamp(0, self.height as isize - 1) as usize;
        self.data[(y * self.width + x) * self.channels + c]
    }

    /// Writes channel `c` of pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn set(&mut self, x: usize, y: usize, c: usize, v: u8) {
        assert!(x < self.width && y < self.height && c < self.channels);
        self.data[(y * self.width + x) * self.channels + c] = v;
    }
}

/// ITU-R BT.601 luma conversion in the integer form hardware uses:
/// `Y = (77 R + 150 G + 29 B + 128) >> 8`.
pub fn grayscale(image: &Image) -> Image {
    if image.channels() == 1 {
        return image.clone();
    }
    let mut out = Image::zeroed(image.width(), image.height(), 1);
    for y in 0..image.height() {
        for x in 0..image.width() {
            let r = image.get(x as isize, y as isize, 0) as u32;
            let g = image.get(x as isize, y as isize, 1) as u32;
            let b = image.get(x as isize, y as isize, 2) as u32;
            let luma = (77 * r + 150 * g + 29 * b + 128) >> 8;
            out.set(x, y, 0, luma.min(255) as u8);
        }
    }
    out
}

/// 3×3 integer Gaussian kernel `[1 2 1; 2 4 2; 1 2 1] / 16`.
const GAUSS3: [[i32; 3]; 3] = [[1, 2, 1], [2, 4, 2], [1, 2, 1]];

/// Applies a 3×3 Gaussian blur per channel (clamp-to-edge).
pub fn gaussian_blur(image: &Image) -> Image {
    let mut out = Image::zeroed(image.width(), image.height(), image.channels());
    for y in 0..image.height() as isize {
        for x in 0..image.width() as isize {
            for c in 0..image.channels() {
                let mut acc = 0i32;
                for (ky, row) in GAUSS3.iter().enumerate() {
                    for (kx, &w) in row.iter().enumerate() {
                        acc += w * image.get(x + kx as isize - 1, y + ky as isize - 1, c) as i32;
                    }
                }
                out.set(x as usize, y as usize, c, ((acc + 8) / 16).clamp(0, 255) as u8);
            }
        }
    }
    out
}

/// Sobel gradient kernels.
const SOBEL_X: [[i32; 3]; 3] = [[-1, 0, 1], [-2, 0, 2], [-1, 0, 1]];
const SOBEL_Y: [[i32; 3]; 3] = [[-1, -2, -1], [0, 0, 0], [1, 2, 1]];

/// Sobel edge magnitude on a grayscale image (`|Gx| + |Gy|`, saturated) —
/// the L1 approximation FPGA pipelines use to avoid a square root.
///
/// RGB inputs are converted to grayscale first.
pub fn sobel(image: &Image) -> Image {
    let gray = grayscale(image);
    let mut out = Image::zeroed(gray.width(), gray.height(), 1);
    for y in 0..gray.height() as isize {
        for x in 0..gray.width() as isize {
            let mut gx = 0i32;
            let mut gy = 0i32;
            for ky in 0..3 {
                for kx in 0..3 {
                    let p = gray.get(x + kx as isize - 1, y + ky as isize - 1, 0) as i32;
                    gx += SOBEL_X[ky][kx] * p;
                    gy += SOBEL_Y[ky][kx] * p;
                }
            }
            out.set(x as usize, y as usize, 0, (gx.abs() + gy.abs()).min(255) as u8);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient_image(w: usize, h: usize) -> Image {
        let mut img = Image::zeroed(w, h, 1);
        for y in 0..h {
            for x in 0..w {
                img.set(x, y, 0, ((x * 255) / w.max(1)) as u8);
            }
        }
        img
    }

    #[test]
    fn grayscale_white_stays_white() {
        let img = Image::new(2, 2, 3, vec![255; 12]);
        let g = grayscale(&img);
        assert!(g.data().iter().all(|&v| v == 255));
    }

    #[test]
    fn grayscale_weights_green_highest() {
        let red = Image::new(1, 1, 3, vec![255, 0, 0]);
        let green = Image::new(1, 1, 3, vec![0, 255, 0]);
        let blue = Image::new(1, 1, 3, vec![0, 0, 255]);
        let (r, g, b) = (
            grayscale(&red).get(0, 0, 0),
            grayscale(&green).get(0, 0, 0),
            grayscale(&blue).get(0, 0, 0),
        );
        assert!(g > r && r > b, "r={r} g={g} b={b}");
    }

    #[test]
    fn grayscale_of_gray_is_identity() {
        let img = gradient_image(8, 8);
        assert_eq!(grayscale(&img), img);
    }

    #[test]
    fn blur_preserves_constant_image() {
        let img = Image::new(5, 5, 1, vec![77; 25]);
        assert_eq!(gaussian_blur(&img), img);
    }

    #[test]
    fn blur_reduces_contrast_of_impulse() {
        let mut img = Image::zeroed(5, 5, 1);
        img.set(2, 2, 0, 255);
        let out = gaussian_blur(&img);
        // Center keeps the 4/16 weight.
        assert_eq!(out.get(2, 2, 0), 64);
        assert_eq!(out.get(1, 2, 0), 32);
        assert_eq!(out.get(1, 1, 0), 16);
        assert_eq!(out.get(0, 0, 0), 0);
    }

    #[test]
    fn blur_conserves_mean_of_smooth_image() {
        let img = gradient_image(32, 32);
        let out = gaussian_blur(&img);
        let mean_in: f64 =
            img.data().iter().map(|&v| v as f64).sum::<f64>() / img.data().len() as f64;
        let mean_out: f64 =
            out.data().iter().map(|&v| v as f64).sum::<f64>() / out.data().len() as f64;
        assert!((mean_in - mean_out).abs() < 1.0);
    }

    #[test]
    fn sobel_flat_image_is_zero() {
        let img = Image::new(6, 6, 1, vec![123; 36]);
        let out = sobel(&img);
        assert!(out.data().iter().all(|&v| v == 0));
    }

    #[test]
    fn sobel_finds_vertical_edge() {
        // Left half black, right half white: strong response on the seam.
        let mut img = Image::zeroed(8, 8, 1);
        for y in 0..8 {
            for x in 4..8 {
                img.set(x, y, 0, 255);
            }
        }
        let out = sobel(&img);
        assert_eq!(out.get(3, 4, 0), 255);
        assert_eq!(out.get(4, 4, 0), 255);
        assert_eq!(out.get(1, 4, 0), 0);
        assert_eq!(out.get(6, 4, 0), 0);
    }

    #[test]
    fn sobel_accepts_rgb() {
        let img = Image::new(4, 4, 3, vec![200; 48]);
        let out = sobel(&img);
        assert_eq!(out.channels(), 1);
        assert!(out.data().iter().all(|&v| v == 0));
    }

    #[test]
    fn clamp_to_edge_addressing() {
        let img = gradient_image(4, 4);
        assert_eq!(img.get(-5, 0, 0), img.get(0, 0, 0));
        assert_eq!(img.get(10, 2, 0), img.get(3, 2, 0));
    }

    #[test]
    #[should_panic(expected = "data size mismatch")]
    fn rejects_bad_buffer_size() {
        Image::new(4, 4, 3, vec![0; 10]);
    }
}
