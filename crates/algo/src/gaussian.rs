//! Gaussian random number generation (the `GRN` benchmark).
//!
//! The paper's `GRN` accelerator (1,238 LoC of Verilog, 200 MHz) produces
//! Gaussian-distributed random numbers. FPGA implementations typically use
//! either the central-limit-theorem (CLT) sum-of-uniforms construction
//! (cheap in LUTs) or the Box–Muller transform (needs CORDIC/log units).
//! This module implements both:
//!
//! * [`CltGaussian`] — a hardware-faithful fixed-point CLT generator: sum of
//!   twelve uniform Q16 samples, recentered (the classic Irwin–Hall 12-sum,
//!   whose variance is exactly 1).
//! * [`box_muller`] — the floating-point reference used to validate the
//!   hardware generator's distribution in tests.
//!
//! # Examples
//!
//! ```
//! use optimus_algo::gaussian::CltGaussian;
//!
//! let mut g = CltGaussian::new(7);
//! let x = g.next_q16();
//! // Q16 fixed point: |x| < 6.0 * 65536 always (12-sum is bounded by ±6).
//! assert!(x.abs() < 6 * 65536);
//! ```

use optimus_sim::rng::Xoshiro256;

/// Fixed-point (Q16.16) Gaussian generator using the Irwin–Hall 12-sum.
///
/// Summing 12 independent uniforms on `[0, 1)` and subtracting 6 yields a
/// distribution with mean 0, variance 1, and support `[-6, 6]` — the classic
/// FPGA-friendly construction (no multipliers, no transcendentals).
#[derive(Debug, Clone)]
pub struct CltGaussian {
    rng: Xoshiro256,
}

impl CltGaussian {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: Xoshiro256::seed_from(seed),
        }
    }

    /// Returns the next sample in Q16.16 fixed point.
    pub fn next_q16(&mut self) -> i32 {
        // Each uniform sample is 16 fractional bits; the sum of 12 of them
        // occupies at most 16+4 bits, well within i32.
        let mut acc: i64 = 0;
        for _ in 0..12 {
            acc += (self.rng.next_u64() & 0xFFFF) as i64;
        }
        (acc - 6 * 65536) as i32
    }

    /// Returns the next sample as `f64` (unit normal).
    pub fn next_f64(&mut self) -> f64 {
        self.next_q16() as f64 / 65536.0
    }

    /// Fills a 64-byte cache line with sixteen Q16.16 samples — the
    /// accelerator's output format.
    pub fn fill_line(&mut self, line: &mut [u8; 64]) {
        for i in 0..16 {
            let sample = self.next_q16();
            line[4 * i..4 * i + 4].copy_from_slice(&sample.to_le_bytes());
        }
    }

    /// Clones out the generator state (saved on preemption).
    pub fn rng_state(&self) -> Xoshiro256 {
        self.rng.clone()
    }

    /// Restores generator state (on preemption resume).
    pub fn restore(&mut self, state: Xoshiro256) {
        self.rng = state;
    }
}

/// Generates one pair of independent unit normals via Box–Muller.
pub fn box_muller(rng: &mut Xoshiro256) -> (f64, f64) {
    // Avoid u1 == 0 which would produce ln(0).
    let u1 = loop {
        let v = rng.gen_f64();
        if v > 0.0 {
            break v;
        }
    };
    let u2 = rng.gen_f64();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * core::f64::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

/// Computes the sample mean and variance of `samples`.
pub fn moments(samples: &[f64]) -> (f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    (mean, var)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clt_moments_are_standard_normal() {
        let mut g = CltGaussian::new(42);
        let samples: Vec<f64> = (0..200_000).map(|_| g.next_f64()).collect();
        let (mean, var) = moments(&samples);
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "variance {var}");
    }

    #[test]
    fn clt_support_is_bounded() {
        let mut g = CltGaussian::new(1);
        for _ in 0..100_000 {
            let x = g.next_f64();
            assert!((-6.0..=6.0).contains(&x));
        }
    }

    #[test]
    fn clt_tail_mass_is_plausible() {
        // P(|X| > 2) ≈ 4.55% for a unit normal; the 12-sum approximation is
        // slightly lighter-tailed but must be in the right ballpark.
        let mut g = CltGaussian::new(9);
        let n = 100_000;
        let tails = (0..n).filter(|_| g.next_f64().abs() > 2.0).count();
        let frac = tails as f64 / n as f64;
        assert!((0.03..0.06).contains(&frac), "tail mass {frac}");
    }

    #[test]
    fn box_muller_moments() {
        let mut rng = Xoshiro256::seed_from(5);
        let mut samples = Vec::with_capacity(200_000);
        for _ in 0..100_000 {
            let (a, b) = box_muller(&mut rng);
            samples.push(a);
            samples.push(b);
        }
        let (mean, var) = moments(&samples);
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "variance {var}");
    }

    #[test]
    fn clt_matches_box_muller_distribution_coarsely() {
        // Compare CDF at a few probe points via empirical fractions.
        let mut g = CltGaussian::new(11);
        let mut rng = Xoshiro256::seed_from(12);
        let n = 100_000;
        for probe in [-1.0f64, 0.0, 1.0] {
            let clt = (0..n).filter(|_| g.next_f64() < probe).count() as f64 / n as f64;
            let mut bm_count = 0;
            for _ in 0..n / 2 {
                let (a, b) = box_muller(&mut rng);
                bm_count += (a < probe) as usize + (b < probe) as usize;
            }
            let bm = bm_count as f64 / n as f64;
            assert!((clt - bm).abs() < 0.02, "probe {probe}: clt {clt} bm {bm}");
        }
    }

    #[test]
    fn fill_line_encodes_sixteen_samples() {
        let mut g = CltGaussian::new(3);
        let mut probe = CltGaussian::new(3);
        let mut line = [0u8; 64];
        g.fill_line(&mut line);
        for i in 0..16 {
            let expect = probe.next_q16();
            let got = i32::from_le_bytes(line[4 * i..4 * i + 4].try_into().unwrap());
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn save_restore_reproduces_stream() {
        let mut g = CltGaussian::new(8);
        g.next_q16();
        let saved = g.rng_state();
        let a: Vec<i32> = (0..8).map(|_| g.next_q16()).collect();
        g.restore(saved);
        let b: Vec<i32> = (0..8).map(|_| g.next_q16()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn moments_of_empty_slice() {
        assert_eq!(moments(&[]), (0.0, 0.0));
    }
}
