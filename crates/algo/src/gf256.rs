//! Arithmetic in GF(2^8), the field underlying Reed–Solomon codes.
//!
//! The paper's `RSD` benchmark is a Reed–Solomon decoder (5,324 LoC of
//! Verilog — the largest benchmark). Reed–Solomon works over GF(2^8) with
//! the primitive polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11D), the
//! polynomial used by CCSDS/QR-style codecs. This module provides log/exp
//! table arithmetic, the same structure a hardware implementation uses
//! (table ROMs + adders).
//!
//! # Examples
//!
//! ```
//! use optimus_algo::gf256::Gf256;
//!
//! let f = Gf256::new();
//! let a = 0x57;
//! let inv = f.inv(a);
//! assert_eq!(f.mul(a, inv), 1);
//! ```

/// The primitive polynomial x^8 + x^4 + x^3 + x^2 + 1.
pub const PRIMITIVE_POLY: u16 = 0x11D;

/// GF(2^8) arithmetic via log/antilog tables generated from the primitive
/// element α = 2.
#[derive(Debug, Clone)]
pub struct Gf256 {
    exp: [u8; 512],
    log: [u8; 256],
}

impl Default for Gf256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Gf256 {
    /// Builds the log/exp tables.
    pub fn new() -> Self {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x: u16 = 1;
        for i in 0..255 {
            exp[i] = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= PRIMITIVE_POLY;
            }
        }
        // Duplicate so mul can skip the mod-255 reduction.
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Self { exp, log }
    }

    /// Addition (and subtraction) in GF(2^8) is XOR.
    #[inline]
    pub fn add(&self, a: u8, b: u8) -> u8 {
        a ^ b
    }

    /// Multiplies `a` and `b`.
    #[inline]
    pub fn mul(&self, a: u8, b: u8) -> u8 {
        if a == 0 || b == 0 {
            0
        } else {
            self.exp[self.log[a as usize] as usize + self.log[b as usize] as usize]
        }
    }

    /// Divides `a` by `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    #[inline]
    pub fn div(&self, a: u8, b: u8) -> u8 {
        assert!(b != 0, "division by zero in GF(256)");
        if a == 0 {
            0
        } else {
            self.exp[self.log[a as usize] as usize + 255 - self.log[b as usize] as usize]
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0`.
    #[inline]
    pub fn inv(&self, a: u8) -> u8 {
        assert!(a != 0, "zero has no inverse in GF(256)");
        self.exp[255 - self.log[a as usize] as usize]
    }

    /// Raises the primitive element α to `power`.
    #[inline]
    pub fn alpha_pow(&self, power: i32) -> u8 {
        self.exp[power.rem_euclid(255) as usize]
    }

    /// Discrete log base α.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0`.
    #[inline]
    pub fn log(&self, a: u8) -> u8 {
        assert!(a != 0, "zero has no discrete log");
        self.log[a as usize]
    }

    /// `a` raised to an arbitrary exponent.
    pub fn pow(&self, a: u8, mut e: u32) -> u8 {
        if a == 0 {
            return if e == 0 { 1 } else { 0 };
        }
        e %= 255;
        self.exp[(self.log[a as usize] as u32 * e % 255) as usize]
    }

    /// Evaluates polynomial `poly` (most significant coefficient first) at `x`.
    pub fn poly_eval(&self, poly: &[u8], x: u8) -> u8 {
        let mut y = 0u8;
        for &c in poly {
            y = self.mul(y, x) ^ c;
        }
        y
    }

    /// Multiplies two polynomials (most significant coefficient first).
    pub fn poly_mul(&self, a: &[u8], b: &[u8]) -> Vec<u8> {
        if a.is_empty() || b.is_empty() {
            return vec![];
        }
        let mut out = vec![0u8; a.len() + b.len() - 1];
        for (i, &ca) in a.iter().enumerate() {
            for (j, &cb) in b.iter().enumerate() {
                out[i + j] ^= self.mul(ca, cb);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_products() {
        let f = Gf256::new();
        // 0x57 * 0x13 with poly 0x11D.
        assert_eq!(f.mul(2, 2), 4);
        assert_eq!(f.mul(0x80, 2), 0x1D); // wraps through the poly
        assert_eq!(f.mul(7, 0), 0);
        assert_eq!(f.mul(1, 0xAB), 0xAB);
    }

    #[test]
    fn every_nonzero_element_has_inverse() {
        let f = Gf256::new();
        for a in 1..=255u8 {
            assert_eq!(f.mul(a, f.inv(a)), 1, "a={a}");
        }
    }

    #[test]
    fn multiplication_is_commutative_and_associative() {
        let f = Gf256::new();
        for a in (1..=255u8).step_by(17) {
            for b in (1..=255u8).step_by(13) {
                assert_eq!(f.mul(a, b), f.mul(b, a));
                for c in (1..=255u8).step_by(31) {
                    assert_eq!(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
                }
            }
        }
    }

    #[test]
    fn distributive_law() {
        let f = Gf256::new();
        for a in (0..=255u8).step_by(7) {
            for b in (0..=255u8).step_by(11) {
                for c in (0..=255u8).step_by(19) {
                    assert_eq!(f.mul(a, b ^ c), f.mul(a, b) ^ f.mul(a, c));
                }
            }
        }
    }

    #[test]
    fn div_inverts_mul() {
        let f = Gf256::new();
        for a in (0..=255u8).step_by(5) {
            for b in (1..=255u8).step_by(9) {
                assert_eq!(f.div(f.mul(a, b), b), a);
            }
        }
    }

    #[test]
    fn alpha_generates_the_field() {
        let f = Gf256::new();
        let mut seen = [false; 256];
        for i in 0..255 {
            seen[f.alpha_pow(i) as usize] = true;
        }
        assert_eq!(seen.iter().filter(|&&s| s).count(), 255);
        assert!(!seen[0]);
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let f = Gf256::new();
        let a = 0x53;
        let mut acc = 1u8;
        for e in 0..20u32 {
            assert_eq!(f.pow(a, e), acc, "e={e}");
            acc = f.mul(acc, a);
        }
    }

    #[test]
    fn poly_eval_horner() {
        let f = Gf256::new();
        // p(x) = x^2 + 3x + 2 evaluated at 1: 1 ^ 3 ^ 2 = 0.
        assert_eq!(f.poly_eval(&[1, 3, 2], 1), 0);
        // At 0: constant term.
        assert_eq!(f.poly_eval(&[1, 3, 2], 0), 2);
    }

    #[test]
    fn poly_mul_degree_adds() {
        let f = Gf256::new();
        let p = f.poly_mul(&[1, 1], &[1, 2]); // (x+1)(x+2) = x^2 + 3x + 2
        assert_eq!(p, vec![1, 3, 2]);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        Gf256::new().div(1, 0);
    }
}
