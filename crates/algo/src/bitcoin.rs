//! Bitcoin proof-of-work mining (the `BTC` benchmark).
//!
//! The paper ports an open-source FPGA bitcoin miner (1,009 LoC of Verilog,
//! 100 MHz). Mining searches for a 32-bit nonce such that the double
//! SHA-256 of an 80-byte block header is numerically below a target. The
//! workload is almost purely compute-bound — it touches memory only to read
//! the header and write a found nonce — which is why Table 4 shows a
//! co-located MemBench keeping 1.00× of its bandwidth.
//!
//! # Examples
//!
//! ```
//! use optimus_algo::bitcoin::{BlockHeader, mine_range};
//!
//! let header = BlockHeader::example();
//! // An easy target: accepts ~1 in 16 hashes.
//! let found = mine_range(&header, 0x0FFF_FFFF_u32.to_be_bytes(), 0, 256);
//! assert!(found.is_some());
//! ```

use crate::sha2::sha256d;

/// An 80-byte bitcoin block header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockHeader {
    /// Protocol version.
    pub version: u32,
    /// Hash of the previous block (little-endian storage order).
    pub prev_hash: [u8; 32],
    /// Merkle root of the transactions.
    pub merkle_root: [u8; 32],
    /// Unix timestamp.
    pub time: u32,
    /// Compact difficulty encoding.
    pub bits: u32,
    /// The nonce being searched.
    pub nonce: u32,
}

impl BlockHeader {
    /// A fixed example header used by tests and benchmarks.
    pub fn example() -> Self {
        Self {
            version: 2,
            prev_hash: [0x11; 32],
            merkle_root: [0x22; 32],
            time: 1_355_555_555,
            bits: 0x1d00_ffff,
            nonce: 0,
        }
    }

    /// Serializes the header into the 80-byte wire format.
    pub fn to_bytes(&self) -> [u8; 80] {
        let mut out = [0u8; 80];
        out[0..4].copy_from_slice(&self.version.to_le_bytes());
        out[4..36].copy_from_slice(&self.prev_hash);
        out[36..68].copy_from_slice(&self.merkle_root);
        out[68..72].copy_from_slice(&self.time.to_le_bytes());
        out[72..76].copy_from_slice(&self.bits.to_le_bytes());
        out[76..80].copy_from_slice(&self.nonce.to_le_bytes());
        out
    }

    /// Parses a header from the 80-byte wire format.
    pub fn from_bytes(bytes: &[u8; 80]) -> Self {
        Self {
            version: u32::from_le_bytes(bytes[0..4].try_into().unwrap()),
            prev_hash: bytes[4..36].try_into().unwrap(),
            merkle_root: bytes[36..68].try_into().unwrap(),
            time: u32::from_le_bytes(bytes[68..72].try_into().unwrap()),
            bits: u32::from_le_bytes(bytes[72..76].try_into().unwrap()),
            nonce: u32::from_le_bytes(bytes[76..80].try_into().unwrap()),
        }
    }

    /// Double-SHA-256 of the serialized header.
    pub fn pow_hash(&self) -> [u8; 32] {
        sha256d(&self.to_bytes())
    }
}

/// Tests whether `hash` (interpreted big-endian after the bitcoin
/// byte-reversal convention) is at or below a 4-byte target prefix.
///
/// Real mining compares against a 256-bit target; the FPGA miner (and this
/// reproduction) short-circuits on the top 32 bits, which is exact for the
/// difficulty ranges used in the benchmarks.
pub fn meets_target(hash: &[u8; 32], target_prefix: [u8; 4]) -> bool {
    // Bitcoin hashes are compared in reversed byte order.
    let top = u32::from_be_bytes([hash[31], hash[30], hash[29], hash[28]]);
    top <= u32::from_be_bytes(target_prefix)
}

/// Scans nonces in `[start, start + count)`, returning the first nonce whose
/// proof-of-work hash meets the target, if any.
pub fn mine_range(
    header: &BlockHeader,
    target_prefix: [u8; 4],
    start: u32,
    count: u32,
) -> Option<u32> {
    let mut h = header.clone();
    for offset in 0..count {
        let nonce = start.wrapping_add(offset);
        h.nonce = nonce;
        if meets_target(&h.pow_hash(), target_prefix) {
            return Some(nonce);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_serialization_round_trips() {
        let h = BlockHeader::example();
        assert_eq!(BlockHeader::from_bytes(&h.to_bytes()), h);
    }

    #[test]
    fn nonce_changes_hash() {
        let mut h = BlockHeader::example();
        let a = h.pow_hash();
        h.nonce = 1;
        assert_ne!(h.pow_hash(), a);
    }

    #[test]
    fn mining_finds_valid_nonce() {
        let header = BlockHeader::example();
        // ~1/16 acceptance probability ⇒ 256 attempts virtually always succeed.
        let target = 0x0FFF_FFFFu32.to_be_bytes();
        let nonce = mine_range(&header, target, 0, 4096).expect("should find a nonce");
        let mut h = header.clone();
        h.nonce = nonce;
        assert!(meets_target(&h.pow_hash(), target));
        // And it is the *first* valid nonce in the range.
        for n in 0..nonce {
            h.nonce = n;
            assert!(!meets_target(&h.pow_hash(), target));
        }
    }

    #[test]
    fn impossible_target_finds_nothing() {
        let header = BlockHeader::example();
        assert_eq!(mine_range(&header, [0, 0, 0, 0], 0, 1000), None);
    }

    #[test]
    fn permissive_target_accepts_everything() {
        let header = BlockHeader::example();
        assert_eq!(mine_range(&header, [0xFF; 4], 17, 100), Some(17));
    }

    #[test]
    fn range_wraps_at_u32_max() {
        let header = BlockHeader::example();
        // Starting near the top with a permissive target returns the start.
        assert_eq!(mine_range(&header, [0xFF; 4], u32::MAX, 10), Some(u32::MAX));
    }
}
