//! MD5 message digest (RFC 1321).
//!
//! The paper's `MD5` benchmark hashes a data stream at 100 MHz and is the
//! most bandwidth-hungry of the real-world accelerators (it consumes a full
//! cache line per accelerator cycle — about half the platform bandwidth,
//! which is why Table 4 shows MemBench dropping to 0.50× when co-located
//! with it). This module implements the digest incrementally so the
//! simulated accelerator can feed it one 64-byte line at a time.
//!
//! # Examples
//!
//! ```
//! use optimus_algo::md5::md5;
//! assert_eq!(
//!     md5(b"abc").to_vec(),
//!     vec![0x90, 0x01, 0x50, 0x98, 0x3c, 0xd2, 0x4f, 0xb0,
//!          0xd6, 0x96, 0x3f, 0x7d, 0x28, 0xe1, 0x7f, 0x72],
//! );
//! ```

const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// K[i] = floor(2^32 * abs(sin(i+1))), computed at startup rather than
/// pasted, as executable documentation of the constant's origin.
fn k_table() -> [u32; 64] {
    let mut k = [0u32; 64];
    for (i, slot) in k.iter_mut().enumerate() {
        *slot = ((i as f64 + 1.0).sin().abs() * 4294967296.0) as u32;
    }
    k
}

/// Incremental MD5 hasher.
///
/// The simulated accelerator pushes one 64-byte cache line per accelerator
/// cycle via [`update`](Self::update); tests and software baselines use the
/// one-shot [`md5`] helper.
#[derive(Debug, Clone)]
pub struct Md5 {
    state: [u32; 4],
    buffer: [u8; 64],
    buffered: usize,
    length_bytes: u64,
    k: [u32; 64],
}

impl Default for Md5 {
    fn default() -> Self {
        Self::new()
    }
}

impl Md5 {
    /// Creates a hasher in the RFC 1321 initial state.
    pub fn new() -> Self {
        Self {
            state: [0x6745_2301, 0xEFCD_AB89, 0x98BA_DCFE, 0x1032_5476],
            buffer: [0; 64],
            buffered: 0,
            length_bytes: 0,
            k: k_table(),
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut m = [0u32; 16];
        for (i, word) in m.iter_mut().enumerate() {
            *word = u32::from_le_bytes(block[4 * i..4 * i + 4].try_into().unwrap());
        }
        let [mut a, mut b, mut c, mut d] = self.state;
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            b = b.wrapping_add(
                a.wrapping_add(f)
                    .wrapping_add(self.k[i])
                    .wrapping_add(m[g])
                    .rotate_left(S[i]),
            );
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
    }

    /// Absorbs `data` into the digest.
    pub fn update(&mut self, data: &[u8]) {
        self.length_bytes += data.len() as u64;
        let mut input = data;
        if self.buffered > 0 {
            let take = (64 - self.buffered).min(input.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&input[..take]);
            self.buffered += take;
            input = &input[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
            if self.buffered > 0 {
                // Input fully absorbed into a still-partial buffer.
                return;
            }
        }
        let mut chunks = input.chunks_exact(64);
        for chunk in &mut chunks {
            self.compress(chunk.try_into().unwrap());
        }
        let rem = chunks.remainder();
        self.buffer[..rem.len()].copy_from_slice(rem);
        self.buffered = rem.len();
    }

    /// Finalizes and returns the 16-byte digest.
    pub fn finalize(mut self) -> [u8; 16] {
        let bit_len = self.length_bytes.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buffered != 56 {
            self.update(&[0]);
        }
        // Length is appended directly to the buffer to avoid recounting it.
        self.buffer[56..].copy_from_slice(&bit_len.to_le_bytes());
        let block = self.buffer;
        self.compress(&block);
        let mut out = [0u8; 16];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// Returns the running internal state (the accelerator's architectural
    /// state saved on preemption).
    pub fn state(&self) -> [u32; 4] {
        self.state
    }

    /// Bytes absorbed so far.
    pub fn length_bytes(&self) -> u64 {
        self.length_bytes
    }

    /// Rebuilds a hasher from a block-aligned snapshot (the accelerator
    /// feeds whole 64-byte lines, so its save points are always aligned).
    ///
    /// # Panics
    ///
    /// Panics if `length_bytes` is not a multiple of the 64-byte block.
    pub fn resume(state: [u32; 4], length_bytes: u64) -> Self {
        assert_eq!(length_bytes % 64, 0, "MD5 snapshots must be block-aligned");
        let mut h = Self::new();
        h.state = state;
        h.length_bytes = length_bytes;
        h
    }
}

/// One-shot MD5 of a byte slice.
pub fn md5(data: &[u8]) -> [u8; 16] {
    let mut h = Md5::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hexdigest(data: &[u8]) -> String {
        md5(data).iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc1321_test_suite() {
        // The seven test vectors from RFC 1321 §A.5.
        assert_eq!(hexdigest(b""), "d41d8cd98f00b204e9800998ecf8427e");
        assert_eq!(hexdigest(b"a"), "0cc175b9c0f1b6a831c399e269772661");
        assert_eq!(hexdigest(b"abc"), "900150983cd24fb0d6963f7d28e17f72");
        assert_eq!(hexdigest(b"message digest"), "f96b697d7cb7938d525a2f31aaf161d0");
        assert_eq!(
            hexdigest(b"abcdefghijklmnopqrstuvwxyz"),
            "c3fcd3d76192e4007dfb496cca67e13b"
        );
        assert_eq!(
            hexdigest(b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"),
            "d174ab98d277d9f5a5611c2c9f419d9f"
        );
        assert_eq!(
            hexdigest(
                b"12345678901234567890123456789012345678901234567890123456789012345678901234567890"
            ),
            "57edf4a22be3c955ac49da2e2107b67a"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| i as u8).collect();
        let mut h = Md5::new();
        for chunk in data.chunks(17) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), md5(&data));
    }

    #[test]
    fn line_at_a_time_matches_oneshot() {
        // The accelerator's access pattern: whole 64-byte lines.
        let data: Vec<u8> = (0..4096u32).map(|i| (i * 31) as u8).collect();
        let mut h = Md5::new();
        for chunk in data.chunks(64) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), md5(&data));
    }

    #[test]
    fn boundary_lengths() {
        for len in [55usize, 56, 57, 63, 64, 65, 119, 120, 128] {
            let data = vec![0xABu8; len];
            let mut h = Md5::new();
            h.update(&data);
            // Compare against splitting at every possible point.
            let mut h2 = Md5::new();
            h2.update(&data[..len / 2]);
            h2.update(&data[len / 2..]);
            assert_eq!(h.finalize(), h2.finalize(), "len={len}");
        }
    }
}
