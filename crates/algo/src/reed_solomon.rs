//! Reed–Solomon encoding and decoding over GF(2^8).
//!
//! The paper's `RSD` benchmark is a Reed–Solomon *decoder* — the heaviest
//! real-world accelerator in Table 1. This module implements a systematic
//! RS(n, k) code with `n − k = 2t` parity symbols:
//!
//! * encoding by polynomial long division with the generator polynomial,
//! * syndrome computation,
//! * Berlekamp–Massey to find the error-locator polynomial,
//! * Chien search for error positions,
//! * Forney's formula for error magnitudes.
//!
//! This is exactly the pipeline an FPGA RS decoder implements stage by
//! stage.
//!
//! # Examples
//!
//! ```
//! use optimus_algo::reed_solomon::ReedSolomon;
//!
//! let rs = ReedSolomon::new(16); // 16 parity symbols: corrects 8 errors
//! let mut codeword = rs.encode(b"hello reed solomon");
//! codeword[0] ^= 0xFF; // corrupt one symbol
//! let decoded = rs.decode(&codeword).unwrap();
//! assert_eq!(&decoded, b"hello reed solomon");
//! ```

use crate::gf256::Gf256;

/// Errors returned by [`ReedSolomon::decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// More errors occurred than the code can correct.
    TooManyErrors,
    /// The codeword is shorter than the parity region.
    CodewordTooShort,
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DecodeError::TooManyErrors => write!(f, "too many symbol errors to correct"),
            DecodeError::CodewordTooShort => write!(f, "codeword shorter than parity length"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A systematic Reed–Solomon codec with a configurable number of parity
/// symbols.
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    field: Gf256,
    parity: usize,
    generator: Vec<u8>,
}

impl ReedSolomon {
    /// Creates a codec with `parity` parity symbols (corrects `parity / 2`
    /// symbol errors).
    ///
    /// # Panics
    ///
    /// Panics if `parity` is zero or ≥ 255.
    pub fn new(parity: usize) -> Self {
        assert!(parity > 0 && parity < 255, "parity must be in 1..255");
        let field = Gf256::new();
        // g(x) = Π_{i=0}^{parity-1} (x − α^i)
        let mut generator = vec![1u8];
        for i in 0..parity {
            generator = field.poly_mul(&generator, &[1, field.alpha_pow(i as i32)]);
        }
        Self {
            field,
            parity,
            generator,
        }
    }

    /// Number of parity symbols appended to each message.
    pub fn parity_len(&self) -> usize {
        self.parity
    }

    /// Maximum number of correctable symbol errors.
    pub fn correction_capacity(&self) -> usize {
        self.parity / 2
    }

    /// Encodes `message`, returning `message ‖ parity`.
    ///
    /// # Panics
    ///
    /// Panics if `message.len() + parity` exceeds 255 (the RS block length
    /// over GF(2^8)).
    pub fn encode(&self, message: &[u8]) -> Vec<u8> {
        assert!(
            message.len() + self.parity <= 255,
            "RS block length over GF(256) is at most 255 symbols"
        );
        // Systematic encoding: remainder of msg·x^parity divided by g(x).
        let mut remainder = vec![0u8; self.parity];
        for &sym in message {
            let factor = sym ^ remainder[0];
            remainder.rotate_left(1);
            remainder[self.parity - 1] = 0;
            if factor != 0 {
                for (r, &g) in remainder.iter_mut().zip(&self.generator[1..]) {
                    *r ^= self.field.mul(g, factor);
                }
            }
        }
        let mut out = message.to_vec();
        out.extend_from_slice(&remainder);
        out
    }

    fn syndromes(&self, codeword: &[u8]) -> Vec<u8> {
        (0..self.parity)
            .map(|i| self.field.poly_eval(codeword, self.field.alpha_pow(i as i32)))
            .collect()
    }

    /// Decodes a codeword, correcting up to `parity/2` symbol errors.
    /// Returns the message portion (parity stripped).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::TooManyErrors`] if the error count exceeds the
    /// correction capacity, and [`DecodeError::CodewordTooShort`] if the
    /// input cannot even contain the parity symbols.
    pub fn decode(&self, codeword: &[u8]) -> Result<Vec<u8>, DecodeError> {
        if codeword.len() < self.parity || codeword.len() > 255 {
            return Err(DecodeError::CodewordTooShort);
        }
        let synd = self.syndromes(codeword);
        if synd.iter().all(|&s| s == 0) {
            return Ok(codeword[..codeword.len() - self.parity].to_vec());
        }

        // Berlekamp–Massey: find the error locator polynomial sigma
        // (lowest-degree LFSR generating the syndrome sequence).
        let f = &self.field;
        let mut sigma = vec![1u8]; // current locator, lowest degree first
        let mut prev = vec![1u8];
        let mut l = 0usize; // current LFSR length
        let mut m = 1usize; // steps since last update
        let mut b = 1u8; // discrepancy at last update
        for n in 0..self.parity {
            // discrepancy d = S_n + Σ sigma_i * S_{n-i}
            let mut d = synd[n];
            for i in 1..=l {
                if i < sigma.len() {
                    d ^= f.mul(sigma[i], synd[n - i]);
                }
            }
            if d == 0 {
                m += 1;
            } else if 2 * l <= n {
                let temp = sigma.clone();
                let coef = f.div(d, b);
                // sigma -= (d/b) * x^m * prev
                let mut shifted = vec![0u8; m];
                shifted.extend_from_slice(&prev);
                if shifted.len() > sigma.len() {
                    sigma.resize(shifted.len(), 0);
                }
                for (s, &p) in sigma.iter_mut().zip(shifted.iter()) {
                    *s ^= f.mul(coef, p);
                }
                l = n + 1 - l;
                prev = temp;
                b = d;
                m = 1;
            } else {
                let coef = f.div(d, b);
                let mut shifted = vec![0u8; m];
                shifted.extend_from_slice(&prev);
                if shifted.len() > sigma.len() {
                    sigma.resize(shifted.len(), 0);
                }
                for (s, &p) in sigma.iter_mut().zip(shifted.iter()) {
                    *s ^= f.mul(coef, p);
                }
                m += 1;
            }
        }
        while sigma.last() == Some(&0) {
            sigma.pop();
        }
        let num_errors = sigma.len() - 1;
        if num_errors > self.correction_capacity() {
            return Err(DecodeError::TooManyErrors);
        }

        // Chien search: find roots of sigma. Position j (from the end of the
        // codeword) is an error location if sigma(α^{-j}) == 0.
        let n_len = codeword.len();
        let mut error_positions = Vec::new();
        for j in 0..n_len {
            let x_inv = f.alpha_pow(-(j as i32));
            // Evaluate sigma (lowest degree first) at x_inv.
            let mut acc = 0u8;
            for (i, &c) in sigma.iter().enumerate() {
                acc ^= f.mul(c, f.pow(x_inv, i as u32));
            }
            if acc == 0 {
                error_positions.push(n_len - 1 - j);
            }
        }
        if error_positions.len() != num_errors {
            return Err(DecodeError::TooManyErrors);
        }

        // Forney: error magnitude at position p is
        //   e = X * omega(X^-1) / sigma'(X^-1),   X = α^{n-1-p}
        // where omega = (synd · sigma) mod x^parity.
        let mut omega = vec![0u8; self.parity];
        for (i, om) in omega.iter_mut().enumerate() {
            let mut acc = 0u8;
            for k in 0..=i {
                if k < sigma.len() {
                    acc ^= f.mul(sigma[k], synd[i - k]);
                }
            }
            *om = acc;
        }

        let mut corrected = codeword.to_vec();
        for &p in &error_positions {
            let j = (n_len - 1 - p) as i32;
            let x_inv = f.alpha_pow(-j);
            let mut omega_val = 0u8;
            for (i, &c) in omega.iter().enumerate() {
                omega_val ^= f.mul(c, f.pow(x_inv, i as u32));
            }
            // Formal derivative of sigma at x_inv: odd-power terms only.
            let mut sigma_deriv = 0u8;
            for (i, &c) in sigma.iter().enumerate() {
                if i % 2 == 1 {
                    sigma_deriv ^= f.mul(c, f.pow(x_inv, (i - 1) as u32));
                }
            }
            if sigma_deriv == 0 {
                return Err(DecodeError::TooManyErrors);
            }
            // Forney with the b = 0 generator convention:
            //   e = X^(1-b) · Ω(X⁻¹) / Λ'(X⁻¹),  X = α^j.
            let magnitude = f.mul(f.alpha_pow(j), f.div(omega_val, sigma_deriv));
            corrected[p] ^= magnitude;
        }

        // Verify: all syndromes of the corrected word must vanish.
        if self.syndromes(&corrected).iter().any(|&s| s != 0) {
            return Err(DecodeError::TooManyErrors);
        }
        Ok(corrected[..n_len - self.parity].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimus_sim::rng::Xoshiro256;

    #[test]
    fn clean_round_trip() {
        let rs = ReedSolomon::new(8);
        let msg = b"the quick brown fox";
        let cw = rs.encode(msg);
        assert_eq!(cw.len(), msg.len() + 8);
        assert_eq!(rs.decode(&cw).unwrap(), msg);
    }

    #[test]
    fn corrects_up_to_capacity() {
        let rs = ReedSolomon::new(16);
        let msg: Vec<u8> = (0..100).collect();
        let clean = rs.encode(&msg);
        let mut rng = Xoshiro256::seed_from(77);
        for errors in 1..=8 {
            let mut cw = clean.clone();
            let mut positions: Vec<usize> = (0..cw.len()).collect();
            rng.shuffle(&mut positions);
            for &p in positions.iter().take(errors) {
                cw[p] ^= (rng.next_u64() % 255 + 1) as u8;
            }
            assert_eq!(rs.decode(&cw).unwrap(), msg, "errors={errors}");
        }
    }

    #[test]
    fn detects_too_many_errors() {
        let rs = ReedSolomon::new(8); // corrects 4
        let msg: Vec<u8> = (0..50).collect();
        let mut cw = rs.encode(&msg);
        let mut rng = Xoshiro256::seed_from(3);
        // 10 errors in distinct positions: far beyond capacity.
        let mut positions: Vec<usize> = (0..cw.len()).collect();
        rng.shuffle(&mut positions);
        for &p in positions.iter().take(10) {
            cw[p] ^= 0x55;
        }
        // Either an error is reported, or (rarely) miscorrection to a
        // different codeword; it must never silently return the original.
        match rs.decode(&cw) {
            Err(_) => {}
            Ok(decoded) => assert_ne!(decoded, msg),
        }
    }

    #[test]
    fn corrupt_parity_symbols_also_corrected() {
        let rs = ReedSolomon::new(8);
        let msg = b"parity errors too";
        let mut cw = rs.encode(msg);
        let n = cw.len();
        cw[n - 1] ^= 0xA5;
        cw[n - 3] ^= 0x11;
        assert_eq!(rs.decode(&cw).unwrap(), msg);
    }

    #[test]
    fn max_length_block() {
        let rs = ReedSolomon::new(32);
        let msg: Vec<u8> = (0..223).map(|i| i as u8).collect(); // RS(255,223)
        let mut cw = rs.encode(&msg);
        assert_eq!(cw.len(), 255);
        for p in [0usize, 100, 254] {
            cw[p] ^= 0xFF;
        }
        assert_eq!(rs.decode(&cw).unwrap(), msg);
    }

    #[test]
    fn burst_errors_within_capacity() {
        let rs = ReedSolomon::new(16);
        let msg: Vec<u8> = (0..64).map(|i| (i * 3) as u8).collect();
        let mut cw = rs.encode(&msg);
        for p in 10..18 {
            cw[p] = !cw[p]; // 8 consecutive corrupted symbols
        }
        assert_eq!(rs.decode(&cw).unwrap(), msg);
    }

    #[test]
    fn rejects_short_codeword() {
        let rs = ReedSolomon::new(8);
        assert_eq!(rs.decode(&[1, 2, 3]), Err(DecodeError::CodewordTooShort));
    }

    #[test]
    #[should_panic(expected = "at most 255")]
    fn encode_rejects_oversized_block() {
        let rs = ReedSolomon::new(8);
        rs.encode(&vec![0u8; 250]);
    }

    #[test]
    fn generator_has_expected_degree() {
        let rs = ReedSolomon::new(12);
        assert_eq!(rs.correction_capacity(), 6);
        assert_eq!(rs.parity_len(), 12);
    }
}
