//! Graphs and single-source shortest paths (the `SSSP` benchmark).
//!
//! The paper uses an FPGA graph-processing application (Zhou & Prasanna's
//! SSSP accelerator) as its motivating pointer-chasing workload: Fig. 1
//! compares it under the shared-memory and host-centric programming models,
//! and it appears again in the spatial-multiplexing scaling study (Fig. 7).
//!
//! This module provides:
//!
//! * [`CsrGraph`] — a compressed-sparse-row graph, the in-memory layout the
//!   accelerator walks via DMA (row offsets array → edge array), i.e. the
//!   "iteratively access a non-contiguous set of vertices and edges" pattern
//!   the paper describes;
//! * [`sssp`] — the iterative Bellman–Ford-style relaxation the FPGA
//!   implements (frontier-based, no priority queue — hardware-friendly);
//! * [`sssp_dijkstra`] — a binary-heap Dijkstra used as a golden reference
//!   in tests.
//!
//! # Examples
//!
//! ```
//! use optimus_algo::graph::CsrGraph;
//!
//! // A 3-vertex path: 0 -> 1 (weight 2), 1 -> 2 (weight 3).
//! let g = CsrGraph::from_edges(3, &[(0, 1, 2), (1, 2, 3)]);
//! let dist = optimus_algo::graph::sssp(&g, 0);
//! assert_eq!(dist, vec![0, 2, 5]);
//! ```

/// Distance value representing "unreachable".
pub const INF: u32 = u32::MAX;

/// A directed graph in compressed sparse row form with `u32` edge weights.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    row_offsets: Vec<u32>,
    targets: Vec<u32>,
    weights: Vec<u32>,
}

impl CsrGraph {
    /// Builds a CSR graph from an edge list `(src, dst, weight)`.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= vertices`.
    pub fn from_edges(vertices: usize, edges: &[(u32, u32, u32)]) -> Self {
        let mut degree = vec![0u32; vertices];
        for &(s, d, _) in edges {
            assert!((s as usize) < vertices && (d as usize) < vertices, "edge endpoint out of range");
            degree[s as usize] += 1;
        }
        let mut row_offsets = vec![0u32; vertices + 1];
        for v in 0..vertices {
            row_offsets[v + 1] = row_offsets[v] + degree[v];
        }
        let mut cursor = row_offsets.clone();
        let mut targets = vec![0u32; edges.len()];
        let mut weights = vec![0u32; edges.len()];
        for &(s, d, w) in edges {
            let at = cursor[s as usize] as usize;
            targets[at] = d;
            weights[at] = w;
            cursor[s as usize] += 1;
        }
        Self {
            row_offsets,
            targets,
            weights,
        }
    }

    /// Number of vertices.
    pub fn vertices(&self) -> usize {
        self.row_offsets.len() - 1
    }

    /// Number of edges.
    pub fn edges(&self) -> usize {
        self.targets.len()
    }

    /// The row-offset array (length `vertices + 1`).
    pub fn row_offsets(&self) -> &[u32] {
        &self.row_offsets
    }

    /// Outgoing edges of `v` as `(target, weight)` pairs.
    pub fn neighbors(&self, v: u32) -> impl Iterator<Item = (u32, u32)> + '_ {
        let lo = self.row_offsets[v as usize] as usize;
        let hi = self.row_offsets[v as usize + 1] as usize;
        self.targets[lo..hi]
            .iter()
            .copied()
            .zip(self.weights[lo..hi].iter().copied())
    }

    /// Serializes the graph into the accelerator's DRAM layout:
    /// `[vertices:u32][edges:u32][row_offsets…][targets…][weights…]`,
    /// little-endian, padded to a 64-byte cache-line multiple.
    pub fn to_dram_layout(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 4 * (self.row_offsets.len() + 2 * self.targets.len()));
        out.extend_from_slice(&(self.vertices() as u32).to_le_bytes());
        out.extend_from_slice(&(self.edges() as u32).to_le_bytes());
        for v in self
            .row_offsets
            .iter()
            .chain(self.targets.iter())
            .chain(self.weights.iter())
        {
            out.extend_from_slice(&v.to_le_bytes());
        }
        while out.len() % 64 != 0 {
            out.push(0);
        }
        out
    }

    /// Parses a graph from the DRAM layout produced by
    /// [`to_dram_layout`](Self::to_dram_layout).
    ///
    /// # Panics
    ///
    /// Panics if the buffer is truncated.
    pub fn from_dram_layout(bytes: &[u8]) -> Self {
        let word = |i: usize| u32::from_le_bytes(bytes[4 * i..4 * i + 4].try_into().unwrap());
        let vertices = word(0) as usize;
        let edges = word(1) as usize;
        let mut idx = 2;
        let mut read_vec = |n: usize| -> Vec<u32> {
            let v = (0..n).map(|k| word(idx + k)).collect();
            idx += n;
            v
        };
        let row_offsets = read_vec(vertices + 1);
        let targets = read_vec(edges);
        let weights = read_vec(edges);
        Self {
            row_offsets,
            targets,
            weights,
        }
    }
}

/// Iterative frontier-based SSSP (Bellman–Ford relaxation), the algorithm
/// the FPGA accelerator implements: each round relaxes every edge out of the
/// current frontier, no priority queue.
pub fn sssp(graph: &CsrGraph, source: u32) -> Vec<u32> {
    let n = graph.vertices();
    let mut dist = vec![INF; n];
    if n == 0 {
        return dist;
    }
    dist[source as usize] = 0;
    let mut frontier = vec![source];
    while !frontier.is_empty() {
        let mut next = Vec::new();
        let mut in_next = vec![false; n];
        for &u in &frontier {
            let du = dist[u as usize];
            for (v, w) in graph.neighbors(u) {
                let cand = du.saturating_add(w);
                if cand < dist[v as usize] {
                    dist[v as usize] = cand;
                    if !in_next[v as usize] {
                        in_next[v as usize] = true;
                        next.push(v);
                    }
                }
            }
        }
        frontier = next;
    }
    dist
}

/// Counts the relaxation rounds the frontier algorithm performs — the
/// simulated accelerator's iteration count, which determines how many passes
/// over the edge data it makes.
pub fn sssp_rounds(graph: &CsrGraph, source: u32) -> usize {
    let n = graph.vertices();
    if n == 0 {
        return 0;
    }
    let mut dist = vec![INF; n];
    dist[source as usize] = 0;
    let mut frontier = vec![source];
    let mut rounds = 0;
    while !frontier.is_empty() {
        rounds += 1;
        let mut next = Vec::new();
        let mut in_next = vec![false; n];
        for &u in &frontier {
            let du = dist[u as usize];
            for (v, w) in graph.neighbors(u) {
                let cand = du.saturating_add(w);
                if cand < dist[v as usize] {
                    dist[v as usize] = cand;
                    if !in_next[v as usize] {
                        in_next[v as usize] = true;
                        next.push(v);
                    }
                }
            }
        }
        frontier = next;
    }
    rounds
}

/// Reference Dijkstra with a binary heap, used to validate [`sssp`].
pub fn sssp_dijkstra(graph: &CsrGraph, source: u32) -> Vec<u32> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let n = graph.vertices();
    let mut dist = vec![INF; n];
    if n == 0 {
        return dist;
    }
    dist[source as usize] = 0;
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((0u32, source)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        for (v, w) in graph.neighbors(u) {
            let cand = d.saturating_add(w);
            if cand < dist[v as usize] {
                dist[v as usize] = cand;
                heap.push(Reverse((cand, v)));
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimus_sim::rng::Xoshiro256;

    fn random_graph(n: usize, m: usize, seed: u64) -> CsrGraph {
        let mut rng = Xoshiro256::seed_from(seed);
        let edges: Vec<(u32, u32, u32)> = (0..m)
            .map(|_| {
                (
                    rng.gen_range(0..n as u64) as u32,
                    rng.gen_range(0..n as u64) as u32,
                    rng.gen_range(1..100) as u32,
                )
            })
            .collect();
        CsrGraph::from_edges(n, &edges)
    }

    #[test]
    fn tiny_path_graph() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1)]);
        assert_eq!(sssp(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(sssp(&g, 3), vec![INF, INF, INF, 0]);
    }

    #[test]
    fn shorter_indirect_path_wins() {
        let g = CsrGraph::from_edges(3, &[(0, 2, 10), (0, 1, 1), (1, 2, 1)]);
        assert_eq!(sssp(&g, 0)[2], 2);
    }

    #[test]
    fn frontier_matches_dijkstra_on_random_graphs() {
        for seed in 0..5 {
            let g = random_graph(200, 1000, seed);
            assert_eq!(sssp(&g, 0), sssp_dijkstra(&g, 0), "seed {seed}");
        }
    }

    #[test]
    fn disconnected_vertices_stay_inf() {
        let g = CsrGraph::from_edges(5, &[(0, 1, 1)]);
        let d = sssp(&g, 0);
        assert_eq!(d[1], 1);
        assert!(d[2..].iter().all(|&x| x == INF));
    }

    #[test]
    fn self_loops_and_parallel_edges() {
        let g = CsrGraph::from_edges(2, &[(0, 0, 5), (0, 1, 7), (0, 1, 3)]);
        assert_eq!(sssp(&g, 0), vec![0, 3]);
    }

    #[test]
    fn dram_layout_round_trips() {
        let g = random_graph(50, 200, 9);
        let bytes = g.to_dram_layout();
        assert_eq!(bytes.len() % 64, 0);
        assert_eq!(CsrGraph::from_dram_layout(&bytes), g);
    }

    #[test]
    fn rounds_bounded_by_graph_diameter_plus_one() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1)]);
        assert_eq!(sssp_rounds(&g, 0), 4); // 3 relaxation waves + final empty check folded
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, &[]);
        assert!(sssp(&g, 0).is_empty());
        assert_eq!(sssp_rounds(&g, 0), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_edges() {
        CsrGraph::from_edges(2, &[(0, 5, 1)]);
    }
}
