//! AES-128 block cipher (FIPS 197).
//!
//! The paper's `AES` benchmark is an "AES128 Encryption Algorithm" ported
//! from HardCloud (1,965 lines of Verilog, 200 MHz). This module implements
//! the cipher from scratch: key expansion, encryption, and decryption, plus
//! ECB helpers over whole buffers (the streaming mode the accelerator uses —
//! each 64-byte cache line carries four independent 16-byte blocks).
//!
//! # Examples
//!
//! ```
//! use optimus_algo::aes::Aes128;
//!
//! let key = [0u8; 16];
//! let aes = Aes128::new(&key);
//! let block = [0u8; 16];
//! let ct = aes.encrypt_block(&block);
//! assert_eq!(aes.decrypt_block(&ct), block);
//! ```

/// Number of 32-bit words in an AES-128 key.
const NK: usize = 4;
/// Number of rounds for AES-128.
const NR: usize = 10;

/// The AES S-box.
const SBOX: [u8; 256] = build_sbox();
/// The inverse S-box.
const INV_SBOX: [u8; 256] = build_inv_sbox();

/// Multiplies in GF(2^8) with the AES reduction polynomial x^8+x^4+x^3+x+1.
const fn xtime(x: u8) -> u8 {
    let shifted = x << 1;
    if x & 0x80 != 0 {
        shifted ^ 0x1B
    } else {
        shifted
    }
}

/// Constant-time-free (table) GF(2^8) multiply used by MixColumns.
const fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    let mut i = 0;
    while i < 8 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
        i += 1;
    }
    p
}

/// Builds the S-box at compile time from the multiplicative inverse in
/// GF(2^8) followed by the affine transform, rather than pasting a table —
/// the construction doubles as documentation of the math.
const fn build_sbox() -> [u8; 256] {
    // Generate inverses via the 3-as-generator trick: 3^i enumerates all
    // non-zero field elements, and inv(3^i) = 3^(255-i).
    let mut exp = [0u8; 256];
    let mut log = [0u8; 256];
    let mut x: u8 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x;
        log[x as usize] = i as u8;
        // multiply x by 3 = x + xtime(x)
        x = x ^ xtime(x);
        i += 1;
    }
    let mut sbox = [0u8; 256];
    let mut c = 0;
    while c < 256 {
        let inv = if c == 0 {
            0
        } else {
            exp[(255 - log[c] as usize) % 255]
        };
        // Affine transform: b ^ rotl(b,1) ^ rotl(b,2) ^ rotl(b,3) ^ rotl(b,4) ^ 0x63
        let b = inv;
        sbox[c] = b
            ^ b.rotate_left(1)
            ^ b.rotate_left(2)
            ^ b.rotate_left(3)
            ^ b.rotate_left(4)
            ^ 0x63;
        c += 1;
    }
    sbox
}

const fn build_inv_sbox() -> [u8; 256] {
    let sbox = build_sbox();
    let mut inv = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        inv[sbox[i] as usize] = i as u8;
        i += 1;
    }
    inv
}

/// An expanded AES-128 key schedule.
///
/// Construct once with [`Aes128::new`], then encrypt or decrypt any number
/// of 16-byte blocks.
#[derive(Debug, Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; NR + 1],
}

impl Aes128 {
    /// Expands `key` into the full round-key schedule.
    pub fn new(key: &[u8; 16]) -> Self {
        let mut w = [[0u8; 4]; 4 * (NR + 1)];
        for i in 0..NK {
            w[i] = [key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]];
        }
        let mut rcon: u8 = 1;
        for i in NK..4 * (NR + 1) {
            let mut temp = w[i - 1];
            if i % NK == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
                temp[0] ^= rcon;
                rcon = xtime(rcon);
            }
            for j in 0..4 {
                w[i][j] = w[i - NK][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; NR + 1];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        Self { round_keys }
    }

    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for (s, k) in state.iter_mut().zip(rk.iter()) {
            *s ^= k;
        }
    }

    fn sub_bytes(state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = SBOX[*b as usize];
        }
    }

    fn inv_sub_bytes(state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = INV_SBOX[*b as usize];
        }
    }

    fn shift_rows(state: &mut [u8; 16]) {
        // State is column-major: state[r + 4c].
        for r in 1..4 {
            let row = [state[r], state[r + 4], state[r + 8], state[r + 12]];
            for c in 0..4 {
                state[r + 4 * c] = row[(c + r) % 4];
            }
        }
    }

    fn inv_shift_rows(state: &mut [u8; 16]) {
        for r in 1..4 {
            let row = [state[r], state[r + 4], state[r + 8], state[r + 12]];
            for c in 0..4 {
                state[r + 4 * c] = row[(c + 4 - r) % 4];
            }
        }
    }

    fn mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
            state[4 * c] = gmul(col[0], 2) ^ gmul(col[1], 3) ^ col[2] ^ col[3];
            state[4 * c + 1] = col[0] ^ gmul(col[1], 2) ^ gmul(col[2], 3) ^ col[3];
            state[4 * c + 2] = col[0] ^ col[1] ^ gmul(col[2], 2) ^ gmul(col[3], 3);
            state[4 * c + 3] = gmul(col[0], 3) ^ col[1] ^ col[2] ^ gmul(col[3], 2);
        }
    }

    fn inv_mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
            state[4 * c] =
                gmul(col[0], 14) ^ gmul(col[1], 11) ^ gmul(col[2], 13) ^ gmul(col[3], 9);
            state[4 * c + 1] =
                gmul(col[0], 9) ^ gmul(col[1], 14) ^ gmul(col[2], 11) ^ gmul(col[3], 13);
            state[4 * c + 2] =
                gmul(col[0], 13) ^ gmul(col[1], 9) ^ gmul(col[2], 14) ^ gmul(col[3], 11);
            state[4 * c + 3] =
                gmul(col[0], 11) ^ gmul(col[1], 13) ^ gmul(col[2], 9) ^ gmul(col[3], 14);
        }
    }

    /// Encrypts one 16-byte block.
    pub fn encrypt_block(&self, plaintext: &[u8; 16]) -> [u8; 16] {
        let mut state = *plaintext;
        Self::add_round_key(&mut state, &self.round_keys[0]);
        for round in 1..NR {
            Self::sub_bytes(&mut state);
            Self::shift_rows(&mut state);
            Self::mix_columns(&mut state);
            Self::add_round_key(&mut state, &self.round_keys[round]);
        }
        Self::sub_bytes(&mut state);
        Self::shift_rows(&mut state);
        Self::add_round_key(&mut state, &self.round_keys[NR]);
        state
    }

    /// Decrypts one 16-byte block.
    pub fn decrypt_block(&self, ciphertext: &[u8; 16]) -> [u8; 16] {
        let mut state = *ciphertext;
        Self::add_round_key(&mut state, &self.round_keys[NR]);
        for round in (1..NR).rev() {
            Self::inv_shift_rows(&mut state);
            Self::inv_sub_bytes(&mut state);
            Self::add_round_key(&mut state, &self.round_keys[round]);
            Self::inv_mix_columns(&mut state);
        }
        Self::inv_shift_rows(&mut state);
        Self::inv_sub_bytes(&mut state);
        Self::add_round_key(&mut state, &self.round_keys[0]);
        state
    }

    /// Encrypts a buffer in ECB mode (the accelerator's streaming layout).
    ///
    /// # Panics
    ///
    /// Panics if the buffer length is not a multiple of 16.
    pub fn encrypt_ecb(&self, data: &mut [u8]) {
        assert_eq!(data.len() % 16, 0, "AES buffers must be block-aligned");
        for chunk in data.chunks_exact_mut(16) {
            let block: [u8; 16] = chunk.try_into().unwrap();
            chunk.copy_from_slice(&self.encrypt_block(&block));
        }
    }

    /// Decrypts a buffer in ECB mode.
    ///
    /// # Panics
    ///
    /// Panics if the buffer length is not a multiple of 16.
    pub fn decrypt_ecb(&self, data: &mut [u8]) {
        assert_eq!(data.len() % 16, 0, "AES buffers must be block-aligned");
        for chunk in data.chunks_exact_mut(16) {
            let block: [u8; 16] = chunk.try_into().unwrap();
            chunk.copy_from_slice(&self.decrypt_block(&block));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn sbox_known_entries() {
        assert_eq!(SBOX[0x00], 0x63);
        assert_eq!(SBOX[0x01], 0x7C);
        assert_eq!(SBOX[0x53], 0xED);
        assert_eq!(SBOX[0xFF], 0x16);
    }

    #[test]
    fn inv_sbox_inverts() {
        for i in 0..256 {
            assert_eq!(INV_SBOX[SBOX[i] as usize] as usize, i);
        }
    }

    #[test]
    fn fips197_appendix_b_vector() {
        // FIPS 197 Appendix B example.
        let key: [u8; 16] = hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        let pt: [u8; 16] = hex("3243f6a8885a308d313198a2e0370734").try_into().unwrap();
        let aes = Aes128::new(&key);
        let ct = aes.encrypt_block(&pt);
        assert_eq!(ct.to_vec(), hex("3925841d02dc09fbdc118597196a0b32"));
    }

    #[test]
    fn fips197_appendix_c1_vector() {
        // FIPS 197 Appendix C.1.
        let key: [u8; 16] = hex("000102030405060708090a0b0c0d0e0f").try_into().unwrap();
        let pt: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        let aes = Aes128::new(&key);
        let ct = aes.encrypt_block(&pt);
        assert_eq!(ct.to_vec(), hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
        assert_eq!(aes.decrypt_block(&ct), pt);
    }

    #[test]
    fn ecb_round_trip() {
        let aes = Aes128::new(b"0123456789abcdef");
        let mut data: Vec<u8> = (0u16..256).map(|i| i as u8).collect();
        let original = data.clone();
        aes.encrypt_ecb(&mut data);
        assert_ne!(data, original);
        aes.decrypt_ecb(&mut data);
        assert_eq!(data, original);
    }

    #[test]
    #[should_panic(expected = "block-aligned")]
    fn ecb_rejects_unaligned() {
        let aes = Aes128::new(&[0; 16]);
        aes.encrypt_ecb(&mut [0u8; 15]);
    }

    #[test]
    fn distinct_blocks_encrypt_distinctly() {
        let aes = Aes128::new(&[7; 16]);
        let a = aes.encrypt_block(&[0; 16]);
        let b = aes.encrypt_block(&[1; 16]);
        assert_ne!(a, b);
    }
}
