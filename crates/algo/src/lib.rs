//! Reference implementations of the OPTIMUS benchmark algorithms.
//!
//! Table 1 of the paper evaluates fourteen benchmarks. Twelve of them are
//! "real-world" accelerators (crypto, signal processing, coding theory,
//! bioinformatics, image processing, graph analytics, and proof-of-work);
//! this crate implements each algorithm from scratch in portable Rust.
//!
//! The implementations serve two roles:
//!
//! 1. **Accelerator compute** — the simulated accelerators in
//!    `optimus-accel` call into this crate to perform the *actual*
//!    computation on the cache lines they fetch over simulated DMA, so an
//!    end-to-end run through the hypervisor produces real, checkable output.
//! 2. **Golden references** — integration tests run a workload through the
//!    full virtualized stack and compare against a direct call into this
//!    crate.
//!
//! | Module | Benchmark | Algorithm |
//! |---|---|---|
//! | [`aes`] | AES | AES-128 block cipher (FIPS 197) |
//! | [`md5`] | MD5 | MD5 digest (RFC 1321) |
//! | [`sha2`] | SHA, BTC | SHA-512 and SHA-256 (FIPS 180-4) |
//! | [`fir`] | FIR | fixed-point finite impulse response filter |
//! | [`gaussian`] | GRN | Gaussian random number generator (CLT + Box–Muller) |
//! | [`gf256`], [`reed_solomon`] | RSD | GF(2^8) Reed–Solomon code |
//! | [`smith_waterman`] | SW | local sequence alignment |
//! | [`image`] | GAU, GRS, SBL | Gaussian / grayscale / Sobel filters |
//! | [`graph`] | SSSP | CSR graphs + single-source shortest path |
//! | [`bitcoin`] | BTC | double-SHA-256 proof-of-work |

pub mod aes;
pub mod bitcoin;
pub mod fir;
pub mod gaussian;
pub mod gf256;
pub mod graph;
pub mod image;
pub mod md5;
pub mod reed_solomon;
pub mod sha2;
pub mod smith_waterman;
