//! Smith–Waterman local sequence alignment (the `SW` benchmark).
//!
//! The paper's `SW` accelerator (1,265 LoC of Verilog, 100 MHz) computes
//! local alignments — the classic FPGA systolic-array workload, where one
//! anti-diagonal of the dynamic-programming matrix is computed per clock.
//! This module implements the full affine-free (linear gap) recurrence with
//! traceback, plus a score-only variant matching what streaming hardware
//! returns.
//!
//! # Examples
//!
//! ```
//! use optimus_algo::smith_waterman::{align, Scoring};
//!
//! let scoring = Scoring::default();
//! let result = align(b"ACACACTA", b"AGCACACA", &scoring);
//! assert!(result.score > 0);
//! ```

/// Scoring parameters for the alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scoring {
    /// Score added for a matching pair (positive).
    pub match_score: i32,
    /// Score added for a mismatching pair (negative).
    pub mismatch: i32,
    /// Score added per gap symbol (negative).
    pub gap: i32,
}

impl Default for Scoring {
    /// The textbook parameters: +2 match, −1 mismatch, −1 gap.
    fn default() -> Self {
        Self {
            match_score: 2,
            mismatch: -1,
            gap: -1,
        }
    }
}

/// An alignment result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alignment {
    /// The optimal local alignment score.
    pub score: i32,
    /// End position (exclusive) of the alignment in the query.
    pub query_end: usize,
    /// End position (exclusive) of the alignment in the target.
    pub target_end: usize,
    /// Aligned query fragment with `-` for gaps.
    pub aligned_query: Vec<u8>,
    /// Aligned target fragment with `-` for gaps.
    pub aligned_target: Vec<u8>,
}

/// Computes only the optimal local alignment score.
///
/// This is the quantity a streaming FPGA implementation emits; it uses O(min)
/// memory (one DP row), which is also how the simulated accelerator scores
/// line-sized sequence chunks.
pub fn score_only(query: &[u8], target: &[u8], scoring: &Scoring) -> i32 {
    if query.is_empty() || target.is_empty() {
        return 0;
    }
    let mut prev = vec![0i32; target.len() + 1];
    let mut best = 0;
    for &q in query {
        let mut diag = 0i32; // prev[j-1] from the previous row
        for j in 1..=target.len() {
            let sub = if q == target[j - 1] {
                scoring.match_score
            } else {
                scoring.mismatch
            };
            let score = (diag + sub)
                .max(prev[j] + scoring.gap)
                .max(prev[j - 1] + scoring.gap)
                .max(0);
            diag = prev[j];
            prev[j] = score;
            best = best.max(score);
        }
        // prev[0] stays 0 (local alignment), diag for next row starts at 0.
    }
    best
}

/// Computes the optimal local alignment with traceback.
pub fn align(query: &[u8], target: &[u8], scoring: &Scoring) -> Alignment {
    let rows = query.len() + 1;
    let cols = target.len() + 1;
    let mut dp = vec![0i32; rows * cols];
    let mut best = (0i32, 0usize, 0usize);
    for i in 1..rows {
        for j in 1..cols {
            let sub = if query[i - 1] == target[j - 1] {
                scoring.match_score
            } else {
                scoring.mismatch
            };
            let score = (dp[(i - 1) * cols + j - 1] + sub)
                .max(dp[(i - 1) * cols + j] + scoring.gap)
                .max(dp[i * cols + j - 1] + scoring.gap)
                .max(0);
            dp[i * cols + j] = score;
            if score > best.0 {
                best = (score, i, j);
            }
        }
    }
    // Traceback from the best cell until a zero cell.
    let (score, mut i, mut j) = best;
    let (query_end, target_end) = (i, j);
    let mut aq = Vec::new();
    let mut at = Vec::new();
    while i > 0 && j > 0 && dp[i * cols + j] > 0 {
        let cur = dp[i * cols + j];
        let sub = if query[i - 1] == target[j - 1] {
            scoring.match_score
        } else {
            scoring.mismatch
        };
        if cur == dp[(i - 1) * cols + j - 1] + sub {
            aq.push(query[i - 1]);
            at.push(target[j - 1]);
            i -= 1;
            j -= 1;
        } else if cur == dp[(i - 1) * cols + j] + scoring.gap {
            aq.push(query[i - 1]);
            at.push(b'-');
            i -= 1;
        } else {
            aq.push(b'-');
            at.push(target[j - 1]);
            j -= 1;
        }
    }
    aq.reverse();
    at.reverse();
    Alignment {
        score,
        query_end,
        target_end,
        aligned_query: aq,
        aligned_target: at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sequences_score_full_match() {
        let s = Scoring::default();
        assert_eq!(score_only(b"ACGT", b"ACGT", &s), 8);
    }

    #[test]
    fn disjoint_alphabets_score_zero() {
        let s = Scoring::default();
        assert_eq!(score_only(b"AAAA", b"TTTT", &s), 0);
    }

    #[test]
    fn classic_textbook_example() {
        // Wikipedia's example: TGTTACGG vs GGTTGACTA, match +3, mismatch -3, gap -2
        let s = Scoring {
            match_score: 3,
            mismatch: -3,
            gap: -2,
        };
        let result = align(b"TGTTACGG", b"GGTTGACTA", &s);
        assert_eq!(result.score, 13);
        assert_eq!(result.aligned_query, b"GTT-AC".to_vec());
        assert_eq!(result.aligned_target, b"GTTGAC".to_vec());
    }

    #[test]
    fn score_only_matches_full_align() {
        let s = Scoring::default();
        let cases: [(&[u8], &[u8]); 4] = [
            (b"ACACACTA", b"AGCACACA"),
            (b"GATTACA", b"GCATGCU"),
            (b"AAAA", b"AAAA"),
            (b"CGTACGTACGT", b"TACG"),
        ];
        for (q, t) in cases {
            assert_eq!(score_only(q, t, &s), align(q, t, &s).score, "{q:?} vs {t:?}");
        }
    }

    #[test]
    fn empty_inputs_score_zero() {
        let s = Scoring::default();
        assert_eq!(score_only(b"", b"ACGT", &s), 0);
        assert_eq!(score_only(b"ACGT", b"", &s), 0);
    }

    #[test]
    fn local_alignment_ignores_flanks() {
        let s = Scoring::default();
        // The common core "CCCC" aligns regardless of differing flanks.
        let score = score_only(b"TTTTCCCCGGGG", b"AAAACCCCAAAA", &s);
        assert_eq!(score, 8);
    }

    #[test]
    fn score_is_symmetric() {
        let s = Scoring::default();
        let a = b"ACGTACGTTGCA";
        let b = b"TGCATGCAACGT";
        assert_eq!(score_only(a, b, &s), score_only(b, a, &s));
    }

    #[test]
    fn single_gap_preferred_over_mismatch_run() {
        let s = Scoring {
            match_score: 2,
            mismatch: -3,
            gap: -1,
        };
        let result = align(b"ACGTT", b"ACTT", &s);
        // Optimal: AC-GTT vs AC-TT with one gap: score 2*4 - 1 = 7
        assert_eq!(result.score, 7);
    }
}
