//! Fixed-point finite impulse response (FIR) filter.
//!
//! The paper's `FIR` benchmark (1,090 LoC of Verilog, 200 MHz) is a
//! HardCloud signal-processing application. FPGA FIR filters operate in
//! fixed point (DSP blocks multiply integers), so this module models a
//! Q15-coefficient, 16-bit-sample direct-form filter: exactly the structure
//! a systolic FPGA implementation computes, with saturating output rounding.
//!
//! # Examples
//!
//! ```
//! use optimus_algo::fir::FirFilter;
//!
//! // A passthrough filter: single unit tap.
//! let fir = FirFilter::new(vec![FirFilter::Q15_ONE]);
//! let y = fir.filter(&[100, -200, 300]);
//! assert_eq!(y, vec![100, -200, 300]);
//! ```

/// A direct-form FIR filter with Q15 fixed-point coefficients.
#[derive(Debug, Clone)]
pub struct FirFilter {
    taps: Vec<i16>,
}

impl FirFilter {
    /// The Q15 representation of 1.0 (saturated to `i16::MAX`).
    pub const Q15_ONE: i16 = i16::MAX;

    /// Creates a filter from Q15 taps.
    ///
    /// # Panics
    ///
    /// Panics if no taps are supplied.
    pub fn new(taps: Vec<i16>) -> Self {
        assert!(!taps.is_empty(), "a FIR filter needs at least one tap");
        Self { taps }
    }

    /// Builds an `n`-tap moving-average (boxcar) low-pass filter.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn moving_average(n: usize) -> Self {
        assert!(n > 0, "a FIR filter needs at least one tap");
        let tap = ((1i32 << 15) / n as i32) as i16;
        Self::new(vec![tap; n])
    }

    /// Builds a windowed-sinc low-pass filter with `n` taps and normalized
    /// cutoff `fc` (fraction of Nyquist, in `(0, 1)`).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `fc` is outside `(0, 1)`.
    pub fn low_pass(n: usize, fc: f64) -> Self {
        assert!(n > 0, "a FIR filter needs at least one tap");
        assert!(fc > 0.0 && fc < 1.0, "cutoff must be a fraction of Nyquist");
        let m = (n - 1) as f64;
        let mut coeffs = Vec::with_capacity(n);
        let mut sum = 0.0;
        for i in 0..n {
            let x = i as f64 - m / 2.0;
            let sinc = if x.abs() < 1e-12 {
                fc
            } else {
                (core::f64::consts::PI * fc * x).sin() / (core::f64::consts::PI * x)
            };
            // Hamming window.
            let w = 0.54 - 0.46 * (2.0 * core::f64::consts::PI * i as f64 / m.max(1.0)).cos();
            let c = sinc * w;
            sum += c;
            coeffs.push(c);
        }
        // Normalize to unity DC gain, then quantize to Q15.
        let taps = coeffs
            .iter()
            .map(|c| ((c / sum) * 32768.0).round().clamp(-32768.0, 32767.0) as i16)
            .collect();
        Self::new(taps)
    }

    /// Number of taps.
    pub fn len(&self) -> usize {
        self.taps.len()
    }

    /// Returns `true` if the filter has no taps (never true; see [`new`](Self::new)).
    pub fn is_empty(&self) -> bool {
        self.taps.is_empty()
    }

    /// The raw Q15 taps.
    pub fn taps(&self) -> &[i16] {
        &self.taps
    }

    /// Filters `input`, producing one output sample per input sample.
    ///
    /// Samples before the start of the buffer are treated as zero (the
    /// hardware shift register powers up cleared). The 32-bit accumulator is
    /// rounded back to Q15 with saturation, matching DSP-block semantics.
    pub fn filter(&self, input: &[i16]) -> Vec<i16> {
        let mut out = Vec::with_capacity(input.len());
        for n in 0..input.len() {
            out.push(self.output_at(input, n));
        }
        out
    }

    /// Computes the single output sample at index `n` of `input`.
    pub fn output_at(&self, input: &[i16], n: usize) -> i16 {
        let mut acc: i64 = 0;
        for (k, &tap) in self.taps.iter().enumerate() {
            if let Some(idx) = n.checked_sub(k) {
                acc += tap as i64 * input[idx] as i64;
            }
        }
        // Round-to-nearest back from Q15 and saturate.
        let rounded = (acc + (1 << 14)) >> 15;
        rounded.clamp(i16::MIN as i64, i16::MAX as i64) as i16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_filter_passes_through() {
        let fir = FirFilter::new(vec![FirFilter::Q15_ONE]);
        let input = [0i16, 1000, -1000, 32767, -32768];
        // Q15_ONE is 32767/32768, so outputs shrink by at most 1 LSB per unit.
        let out = fir.filter(&input);
        for (i, (&x, &y)) in input.iter().zip(out.iter()).enumerate() {
            assert!((x as i32 - y as i32).abs() <= 1, "sample {i}: {x} vs {y}");
        }
    }

    #[test]
    fn moving_average_smooths_impulse() {
        let fir = FirFilter::moving_average(4);
        let mut input = vec![0i16; 16];
        input[4] = 16_000;
        let out = fir.filter(&input);
        // The impulse spreads over 4 samples of ~1/4 amplitude.
        for i in 4..8 {
            assert!((out[i] - 4000).abs() <= 16, "out[{i}]={}", out[i]);
        }
        assert_eq!(out[3], 0);
        assert_eq!(out[9], 0);
    }

    #[test]
    fn dc_gain_is_unity_for_low_pass() {
        let fir = FirFilter::low_pass(31, 0.25);
        let input = vec![10_000i16; 128];
        let out = fir.filter(&input);
        // After the filter settles, output equals the DC input (±quantization).
        for &y in &out[40..] {
            assert!((y as i32 - 10_000).abs() < 64, "settled output {y}");
        }
    }

    #[test]
    fn low_pass_attenuates_nyquist() {
        let fir = FirFilter::low_pass(31, 0.25);
        // Alternating signal at Nyquist frequency.
        let input: Vec<i16> = (0..128).map(|i| if i % 2 == 0 { 10_000 } else { -10_000 }).collect();
        let out = fir.filter(&input);
        for &y in &out[40..] {
            assert!(y.abs() < 500, "Nyquist leakage {y}");
        }
    }

    #[test]
    fn saturation_clamps() {
        // Large positive taps on a max-amplitude input must saturate, not wrap.
        let fir = FirFilter::new(vec![FirFilter::Q15_ONE; 4]);
        let input = vec![i16::MAX; 8];
        let out = fir.filter(&input);
        assert_eq!(out[7], i16::MAX);
        let input = vec![i16::MIN; 8];
        let out = fir.filter(&input);
        assert_eq!(out[7], i16::MIN);
    }

    #[test]
    fn linearity_within_rounding() {
        let fir = FirFilter::moving_average(8);
        let a: Vec<i16> = (0..64).map(|i| (i * 13 % 200) as i16).collect();
        let doubled: Vec<i16> = a.iter().map(|&x| x * 2).collect();
        let ya = fir.filter(&a);
        let yd = fir.filter(&doubled);
        for (u, v) in ya.iter().zip(yd.iter()) {
            assert!((*v as i32 - 2 * *u as i32).abs() <= 2);
        }
    }

    #[test]
    #[should_panic(expected = "at least one tap")]
    fn rejects_empty_taps() {
        FirFilter::new(vec![]);
    }
}
