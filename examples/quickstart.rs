//! Quickstart: boot the OPTIMUS hypervisor, give one VM an AES
//! accelerator, encrypt a buffer over shared memory, and verify the
//! ciphertext against a software reference.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use optimus::hypervisor::{Optimus, OptimusConfig};
use optimus_accel::aes::AesKernel;
use optimus_accel::registry::AccelKind;
use optimus_fabric::mmio::accel_reg;

const APP: u64 = accel_reg::APP_BASE;

fn main() {
    // 1. Configure the FPGA with one AES accelerator behind the hardware
    //    monitor and boot the hypervisor around it.
    let mut hv = Optimus::new(OptimusConfig::new(vec![AccelKind::Aes]));
    let vm = hv.create_vm("tenant-0");
    let va = hv.create_vaccel(vm, 0);
    println!("booted: {} accelerator(s), VM {:?}", hv.device().num_accels(), vm);

    // 2. The guest allocates DMA memory (automatically registered with the
    //    hypervisor page by page — shadow paging) and fills it.
    let plaintext: Vec<u8> = (0..8192u32).map(|i| (i * 31) as u8).collect();
    let (src, dst);
    {
        let mut g = hv.guest(va);
        src = g.alloc_dma(plaintext.len() as u64);
        dst = g.alloc_dma(plaintext.len() as u64);
        g.write_mem(src, &plaintext);

        // 3. Program the accelerator through trapped MMIO and start it.
        g.mmio_write(APP + AesKernel::REG_SRC, src.raw());
        g.mmio_write(APP + AesKernel::REG_DST, dst.raw());
        g.mmio_write(APP + AesKernel::REG_LINES, plaintext.len() as u64 / 64);
        g.mmio_write(APP + AesKernel::REG_KEY0, 0x0706050403020100);
        g.mmio_write(APP + AesKernel::REG_KEY1, 0x0F0E0D0C0B0A0908);
        g.mmio_write(accel_reg::CTRL_CMD, accel_reg::CMD_START);
    }

    // 4. Run the platform until the job completes.
    assert!(hv.run_until_done(va, 100_000_000), "job never finished");
    let mut ciphertext = vec![0u8; plaintext.len()];
    hv.guest(va).read_mem(dst, &mut ciphertext);

    // 5. Verify against the software AES.
    let key: [u8; 16] = (0..16u8).collect::<Vec<_>>().try_into().unwrap();
    let mut expect = plaintext.clone();
    optimus_algo::aes::Aes128::new(&key).encrypt_ecb(&mut expect);
    assert_eq!(ciphertext, expect);

    let stats = hv.stats();
    println!("encrypted {} bytes over simulated shared-memory DMA", plaintext.len());
    println!(
        "hypervisor: {} MMIO traps, {} hypercalls, {} pages pinned",
        stats.traps, stats.hypercalls, stats.pinned_pages
    );
    println!("simulated time: {:.3} ms", hv.device().now() as f64 * 2.5e-6);
    println!("ciphertext verified against the software reference ✓");
}
