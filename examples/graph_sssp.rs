//! Pointer chasing on graphs: the shared-memory accelerator vs the
//! host-centric programming model (the paper's Fig. 1 motivation), on a
//! small graph so the example finishes in seconds.
//!
//! ```bash
//! cargo run --release --example graph_sssp
//! ```

use optimus::hostcentric::{run_sssp, HcMode};
use optimus::hypervisor::{Optimus, OptimusConfig, TrapCost};
use optimus_accel::registry::AccelKind;
use optimus_accel::sssp::SsspKernel;
use optimus_algo::graph::{sssp as sssp_ref, INF};
use optimus_fabric::mmio::accel_reg;
use optimus_workloads::graphs::random_graph;

const APP: u64 = accel_reg::APP_BASE;

fn main() {
    let graph = random_graph(2000, 16_000, 42);
    println!(
        "graph: {} vertices, {} edges",
        graph.vertices(),
        graph.edges()
    );
    let reference = sssp_ref(&graph, 0);

    // Shared-memory: the accelerator chases row offsets → edges → distance
    // words itself, entirely without CPU involvement.
    let mut hv = Optimus::new(OptimusConfig::new(vec![AccelKind::Sssp]));
    let vm = hv.create_vm("graphs");
    let va = hv.create_vaccel(vm, 0);
    let blob = graph.to_dram_layout();
    let n = graph.vertices();
    let dist;
    {
        let mut g = hv.guest(va);
        let gsrc = g.alloc_dma(blob.len() as u64);
        g.write_mem(gsrc, &blob);
        dist = g.alloc_dma((n as u64 * 4).div_ceil(64) * 64 + 64);
        let mut init = Vec::with_capacity(n * 4);
        for v in 0..n {
            init.extend_from_slice(&if v == 0 { 0u32 } else { INF }.to_le_bytes());
        }
        g.write_mem(dist, &init);
        g.mmio_write(APP + SsspKernel::REG_GRAPH, gsrc.raw());
        g.mmio_write(APP + SsspKernel::REG_DIST, dist.raw());
        g.mmio_write(APP + SsspKernel::REG_SOURCE, 0);
        g.mmio_write(APP + SsspKernel::REG_ONCHIP, 1);
        g.mmio_write(accel_reg::CTRL_CMD, accel_reg::CMD_START);
    }
    let start = hv.device().now();
    assert!(hv.run_until_done(va, 10_000_000_000));
    let sm_cycles = hv.device().now() - start;

    // Check the distances.
    let mut out = vec![0u8; n * 4];
    hv.guest(va).read_mem(dist, &mut out);
    let got: Vec<u32> = out
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    assert_eq!(got, reference);
    println!("shared-memory distances verified ✓");

    // Host-centric baselines (also verified internally).
    let cfg = run_sssp(&graph, 0, HcMode::Config, TrapCost::Virtualized);
    assert_eq!(cfg.dist, reference);
    let copy = run_sssp(&graph, 0, HcMode::Copy, TrapCost::Virtualized);
    assert_eq!(copy.dist, reference);

    let ms = |c: u64| c as f64 * 2.5e-6;
    println!("\nsimulated processing time (virtualized):");
    println!("  shared-memory      {:8.3} ms", ms(sm_cycles));
    println!("  host-centric+cfg   {:8.3} ms  ({} DMA configurations)", ms(cfg.cycles), cfg.configs);
    println!("  host-centric+copy  {:8.3} ms  ({} bytes marshalled)", ms(copy.cycles), copy.copied_bytes);
}
