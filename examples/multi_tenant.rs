//! Multi-tenant spatial multiplexing: eight VMs, eight different
//! accelerators on one FPGA, all running concurrently with isolated
//! address spaces.
//!
//! ```bash
//! cargo run --release --example multi_tenant
//! ```

use optimus::hypervisor::{Optimus, OptimusConfig};
use optimus_accel::registry::AccelKind;
use optimus_bench::jobs::{self, JobParams};
use optimus_sim::time::gbps;

fn main() {
    let kinds = [
        AccelKind::Aes,
        AccelKind::Md5,
        AccelKind::Sha,
        AccelKind::Fir,
        AccelKind::Grn,
        AccelKind::Gau,
        AccelKind::Sbl,
        AccelKind::Mb,
    ];
    let mut hv = Optimus::new(OptimusConfig::new(kinds.to_vec()));
    println!("FPGA configured with 8 accelerators behind a 3-level binary tree");
    for (slot, kind) in kinds.iter().enumerate() {
        let vm = hv.create_vm(&format!("tenant-{slot}"));
        let va = hv.create_vaccel(vm, slot);
        let params = JobParams {
            seed: slot as u64 + 1,
            window: 400_000,
            ..JobParams::default()
        };
        let mut g = hv.guest(va);
        jobs::launch(&mut g, *kind, &params);
        println!("  tenant-{slot}: {} started", kind.meta().name);
    }

    // Warm up, then measure one window.
    hv.run(100_000);
    hv.device_mut().open_windows();
    hv.run(400_000);
    hv.device_mut().close_windows();

    println!("\nper-tenant DMA bandwidth over a 1 ms window:");
    let mut total = 0.0;
    for (slot, kind) in kinds.iter().enumerate() {
        let bw = gbps(hv.device().port(slot).window_bytes(), 400_000);
        total += bw;
        println!("  {:>4}: {:6.2} GB/s", kind.meta().name, bw);
    }
    println!("  ----  aggregate {total:.2} GB/s (monitor ceiling 12.8 GB/s)");
    println!("\nisolation: {} faulted DMAs, {} misrouted packets",
        hv.device().host().faulted_dmas(), hv.device().dropped_packets());
}
