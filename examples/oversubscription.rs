//! Preemptive temporal multiplexing: four virtual accelerators
//! oversubscribing ONE physical MD5 accelerator under different
//! scheduling policies, with every digest verified after the dust settles.
//!
//! ```bash
//! cargo run --release --example oversubscription
//! ```

use optimus::hypervisor::{Optimus, OptimusConfig};
use optimus::scheduler::SchedPolicy;
use optimus_accel::hash::reg;
use optimus_accel::registry::AccelKind;
use optimus_fabric::mmio::accel_reg;
use optimus_sim::time::ms_to_cycles;

const APP: u64 = accel_reg::APP_BASE;

fn run_policy(policy: SchedPolicy, weights: &[(u32, u32)]) {
    let mut cfg = OptimusConfig::new(vec![AccelKind::Md5]);
    cfg.time_slice = ms_to_cycles(0.1);
    cfg.sched_policy = policy.clone();
    let mut hv = Optimus::new(cfg);
    let vm = hv.create_vm("shared");
    let mut vas = Vec::new();
    let mut datas = Vec::new();
    let mut dsts = Vec::new();
    for (j, &(w, p)) in weights.iter().enumerate() {
        let va = hv.create_vaccel_with(vm, 0, w, p);
        let data: Vec<u8> = (0..524_288u32).map(|i| (i * (j as u32 + 3)) as u8).collect();
        let mut g = hv.guest(va);
        let src = g.alloc_dma(data.len() as u64);
        let dst = g.alloc_dma(4096);
        let state = g.alloc_dma(1 << 21);
        g.write_mem(src, &data);
        g.set_state_buffer(state);
        g.mmio_write(APP + reg::SRC, src.raw());
        g.mmio_write(APP + reg::DST, dst.raw());
        g.mmio_write(APP + reg::LINES, data.len() as u64 / 64);
        g.mmio_write(accel_reg::CTRL_CMD, accel_reg::CMD_START);
        vas.push(va);
        datas.push(data);
        dsts.push(dst);
    }
    for &va in &vas {
        assert!(hv.run_until_done(va, 4_000_000_000));
    }
    println!("\npolicy {policy:?}: {} context switches, {} forced resets",
        hv.stats().context_switches, hv.stats().forced_resets);
    let occupancy = hv.slot_occupancy(0);
    let total: u64 = occupancy.iter().map(|&(_, c)| c).sum();
    for (i, &(_, occ)) in occupancy.iter().enumerate() {
        let mut out = vec![0u8; 16];
        hv.guest(vas[i]).read_mem(dsts[i], &mut out);
        let ok = out == optimus_algo::md5::md5(&datas[i]).to_vec();
        println!(
            "  vaccel {i} (w={}, p={}): {:5.1}% of the accelerator, digest {}",
            weights[i].0,
            weights[i].1,
            occ as f64 / total as f64 * 100.0,
            if ok { "verified ✓" } else { "WRONG ✗" }
        );
        assert!(ok);
    }
}

fn main() {
    run_policy(SchedPolicy::RoundRobin, &[(1, 0), (1, 0), (1, 0), (1, 0)]);
    run_policy(SchedPolicy::Weighted, &[(4, 0), (2, 0), (1, 0), (1, 0)]);
    run_policy(SchedPolicy::Priority, &[(1, 5), (1, 5), (1, 1), (1, 1)]);
}
