//! Workspace umbrella crate for the OPTIMUS reproduction.
//!
//! This crate exists to host the workspace-spanning integration tests
//! (`tests/`) and the runnable examples (`examples/`). It re-exports every
//! member crate under a short alias so tests and examples read naturally.
//!
//! See the repository `README.md` for a tour and `DESIGN.md` for the full
//! system inventory.

pub use optimus as hypervisor;
pub use optimus_accel as accel;
pub use optimus_algo as algo;
pub use optimus_cci as cci;
pub use optimus_fabric as fabric;
pub use optimus_mem as mem;
pub use optimus_sim as sim;
pub use optimus_workloads as workloads;
